package main

// The farm subcommand works on cross-proxy span dumps (obs.SpanDump), not
// the virtual-time event traces the rest of adctrace reads. It merges every
// proxy's span ring — from a file written by adcload -trace-dump, or by
// scraping live /debug/trace endpoints — aligns clocks, reconstructs the
// per-request trees and reports the census the telemetry-smoke CI gate
// asserts on.

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/adc-sim/adc/internal/httpproxy"
	"github.com/adc-sim/adc/internal/obs"
)

// farmCensus is the -json schema of the farm subcommand.
type farmCensus struct {
	Proxies          int     `json:"proxies"`
	Spans            int     `json:"spans"`
	Dropped          uint64  `json:"dropped"`
	Trees            int     `json:"trees"`
	Complete         int     `json:"complete"`
	Truncated        int     `json:"truncated"`
	Orphaned         int     `json:"orphaned"`
	CompleteFraction float64 `json:"complete_fraction"`
}

func farm(args []string) error {
	fs := flag.NewFlagSet("adctrace farm", flag.ContinueOnError)
	minComplete := fs.Float64("min-complete", 0,
		"exit nonzero when the complete+truncated tree fraction falls below this")
	worst := fs.Int("worst", 3, "show up to this many non-complete trees")
	chromeOut := fs.String("chrome", "", "also write a Chrome trace_event export to this file")
	jsonOut := fs.Bool("json", false, "emit the census as JSON on stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	targets := fs.Args()
	if len(targets) == 0 {
		return fmt.Errorf("usage: adctrace farm [-min-complete f] [-worst n] [-chrome out.json] [-json] <dumps.json | proxy-url...>")
	}

	dumps, err := loadDumps(targets)
	if err != nil {
		return err
	}
	spans := obs.MergeDumps(dumps)
	trees := obs.BuildSpanTrees(spans)
	c := obs.CensusSpanTrees(trees)
	var dropped uint64
	for _, d := range dumps {
		dropped += d.Dropped
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(farmCensus{
			Proxies: len(dumps), Spans: c.Spans, Dropped: dropped,
			Trees: c.Trees, Complete: c.Complete, Truncated: c.Truncated,
			Orphaned: c.Orphaned, CompleteFraction: c.CompleteFraction(),
		}); err != nil {
			return err
		}
	} else {
		fmt.Printf("dumps     %d proxies, %d spans (%d dropped from rings)\n", len(dumps), c.Spans, dropped)
		fmt.Printf("trees     %d: %d complete, %d truncated, %d orphaned\n",
			c.Trees, c.Complete, c.Truncated, c.Orphaned)
		fmt.Printf("complete  %.4f  (complete+truncated over trees)\n", c.CompleteFraction())
		if *worst > 0 {
			printWorstTrees(trees, *worst)
		}
	}
	if *chromeOut != "" {
		if err := writeChromeFile(*chromeOut, spans); err != nil {
			return err
		}
	}
	if *minComplete > 0 && c.CompleteFraction() < *minComplete {
		return fmt.Errorf("adctrace farm: complete fraction %.4f below -min-complete %.4f (census %+v)",
			c.CompleteFraction(), *minComplete, c)
	}
	return nil
}

// loadDumps reads span dumps from the targets: a list of http(s) proxy base
// URLs to scrape live, or a single JSON file holding []obs.SpanDump (the
// adcload -trace-dump format) or one bare obs.SpanDump.
func loadDumps(targets []string) ([]obs.SpanDump, error) {
	if strings.HasPrefix(targets[0], "http://") || strings.HasPrefix(targets[0], "https://") {
		client := &http.Client{Timeout: 5 * time.Second}
		dumps := make([]obs.SpanDump, 0, len(targets))
		for _, t := range targets {
			// Accept either the proxy base URL or its /debug/trace directly.
			d, err := httpproxy.ScrapeTraceDump(client, strings.TrimSuffix(t, "/debug/trace"))
			if err != nil {
				return nil, err
			}
			dumps = append(dumps, d)
		}
		return dumps, nil
	}
	if len(targets) != 1 {
		return nil, fmt.Errorf("adctrace farm: want one dump file or a list of proxy URLs, got %d files", len(targets))
	}
	b, err := os.ReadFile(targets[0])
	if err != nil {
		return nil, err
	}
	var dumps []obs.SpanDump
	if err := json.Unmarshal(b, &dumps); err != nil {
		var one obs.SpanDump
		if err2 := json.Unmarshal(b, &one); err2 != nil {
			return nil, fmt.Errorf("adctrace farm: %s: %w", targets[0], err)
		}
		dumps = []obs.SpanDump{one}
	}
	return dumps, nil
}

// printWorstTrees shows the worst reconstruction failures, orphaned before
// truncated — the first thing to look at when the census is off.
func printWorstTrees(trees []*obs.SpanTree, n int) {
	var bad []*obs.SpanTree
	for _, t := range trees {
		if t.State() != obs.TreeComplete {
			bad = append(bad, t)
		}
	}
	if len(bad) == 0 {
		return
	}
	sort.SliceStable(bad, func(i, j int) bool { return bad[i].State() > bad[j].State() })
	if n > len(bad) {
		n = len(bad)
	}
	fmt.Printf("\nworst %d of %d non-complete trees:\n", n, len(bad))
	for _, t := range bad[:n] {
		obs.FormatSpanTree(os.Stdout, t)
	}
}

func writeChromeFile(path string, spans []obs.Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeSpans(f, spans); err != nil {
		f.Close() //nolint:errcheck // already on the error path
		return err
	}
	return f.Close()
}
