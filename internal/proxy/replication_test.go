package proxy

import (
	"testing"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/sim"
)

func testReplication() Replication {
	return Replication{Enabled: true, HotThreshold: 2, MaxReplicas: 2, Window: 1 << 30, DropThreshold: 1}
}

// replicatedRig is rig() with the replication controller on.
func replicatedRig(t *testing.T, n int, rep Replication) (*sim.Engine, []*ADC) {
	t.Helper()
	peerIDs := make([]ids.NodeID, n)
	for i := range peerIDs {
		peerIDs[i] = ids.NodeID(i)
	}
	eng := sim.NewEngine()
	proxies := make([]*ADC, n)
	for i := range proxies {
		p, err := New(Config{ID: ids.NodeID(i), Peers: peerIDs, Tables: testTables(), Seed: 42, Replication: rep})
		if err != nil {
			t.Fatal(err)
		}
		proxies[i] = p
		if err := eng.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Register(sim.NewOrigin()); err != nil {
		t.Fatal(err)
	}
	return eng, proxies
}

func TestReplicationValidate(t *testing.T) {
	if err := (Replication{}).Validate(); err != nil {
		t.Errorf("zero value must validate, got %v", err)
	}
	norm := Replication{Enabled: true}.Normalize()
	if norm.HotThreshold != 32 || norm.MaxReplicas != 3 || norm.Window != 1024 || norm.DropThreshold != 1 {
		t.Errorf("defaults = %+v", norm)
	}
	if err := norm.Validate(); err != nil {
		t.Errorf("normalized config must validate, got %v", err)
	}
	bad := []Replication{
		{Enabled: true, HotThreshold: -1, MaxReplicas: 1, Window: 1, DropThreshold: 1},
		{Enabled: true, HotThreshold: 1, MaxReplicas: -1, Window: 1, DropThreshold: 1},
		{Enabled: true, HotThreshold: 1, MaxReplicas: 1, Window: -1, DropThreshold: 1},
		{Enabled: true, HotThreshold: 1, MaxReplicas: 1, Window: 1, DropThreshold: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: %+v must fail validation", i, cfg)
		}
	}
	if _, err := New(Config{ID: 0, Peers: []ids.NodeID{0}, Tables: testTables(),
		Replication: Replication{Enabled: true, HotThreshold: -3}}); err == nil {
		t.Error("New must reject an invalid replication config")
	}
}

func TestReplicationPushesAndServesReplicaHits(t *testing.T) {
	// Converged hotspot setup: proxy 0 holds the hot object, proxy 1 has
	// learned that location and forwards every request there. The push
	// must ride the very next reply through proxy 1, which adopts the
	// copy and serves later requests itself.
	eng, proxies := replicatedRig(t, 2, testReplication())
	s := &sink{id: ids.Client(0)}
	if err := eng.Register(s); err != nil {
		t.Fatal(err)
	}
	holder, entry := proxies[0], proxies[1]
	const obj = ids.ObjectID(7)
	if _, adopted := holder.tables.ForceCache(obj, 0, 1, 0); !adopted {
		t.Fatal("setup: ForceCache failed")
	}
	holder.noteHit(obj)
	holder.noteHit(obj) // hot[obj] ≥ HotThreshold: next hit pushes
	entry.tables.Update(obj, 0, 1)

	rep := send(t, eng, s, 1, obj, 1)
	if !rep.Cached || rep.Resolver != 0 {
		t.Fatalf("reply = %+v, want cached hit resolved at proxy 0", rep)
	}
	if holder.Stats().ReplicaPushes != 1 {
		t.Fatalf("holder ReplicaPushes = %d, want 1", holder.Stats().ReplicaPushes)
	}
	if !entry.Tables().IsCached(obj) {
		t.Fatal("entry proxy did not adopt the pushed replica")
	}
	if _, held := entry.replica.held[obj]; !held {
		t.Fatal("adopted copy not marked as a held replica")
	}

	// Later requests through proxy 1 are local replica hits: the head
	// object's load no longer concentrates on proxy 0.
	before := holder.Stats().Requests
	for i := uint64(2); i <= 5; i++ {
		send(t, eng, s, 1, obj, i)
	}
	if entry.Stats().ReplicaHits != 4 {
		t.Errorf("entry ReplicaHits = %d, want 4", entry.Stats().ReplicaHits)
	}
	if holder.Stats().Requests != before {
		t.Errorf("holder saw %d more requests after replication", holder.Stats().Requests-before)
	}
	for _, p := range proxies {
		if p.PendingLen() != 0 {
			t.Errorf("proxy %v has %d dangling pending entries", p.ID(), p.PendingLen())
		}
	}
}

func TestReplicationDeterministicAcrossRuns(t *testing.T) {
	run := func() []ids.NodeID {
		eng, proxies := replicatedRig(t, 5, Replication{Enabled: true, HotThreshold: 2, MaxReplicas: 3, Window: 128, DropThreshold: 1})
		s := &sink{id: ids.Client(0)}
		if err := eng.Register(s); err != nil {
			t.Fatal(err)
		}
		for i := uint64(1); i <= 500; i++ {
			send(t, eng, s, ids.NodeID(i%5), ids.ObjectID(i%11), i)
		}
		var out []ids.NodeID
		for _, p := range proxies {
			st := p.Stats()
			out = append(out,
				ids.NodeID(st.Requests), ids.NodeID(st.LocalHits),
				ids.NodeID(st.ReplicaPushes), ids.NodeID(st.ReplicaDrops),
				ids.NodeID(st.ReplicaHits), ids.NodeID(st.ForwardLearned),
				ids.NodeID(p.Tables().Len()))
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at %d: %v vs %v", i, a, b)
		}
	}
}

func TestRollWindowDropsColdNonAnchorReplica(t *testing.T) {
	peers := []ids.NodeID{0, 1, 2}
	p, err := New(Config{ID: 2, Peers: peers, Tables: testTables(), Seed: 1, Replication: testReplication()})
	if err != nil {
		t.Fatal(err)
	}
	const obj = ids.ObjectID(9)
	// Pretend a replica of obj was pushed here, primary at proxy 1.
	if _, adopted := p.tables.ForceCache(obj, 1, 1, 0); !adopted {
		t.Fatal("setup: ForceCache failed")
	}
	p.replica.held[obj] = struct{}{}
	p.replica.track(obj)

	p.rollWindow() // zero hits this window → cold
	if p.tables.IsCached(obj) {
		t.Error("cold non-anchor replica still cached after roll")
	}
	if p.stats.ReplicaDrops != 1 {
		t.Errorf("ReplicaDrops = %d, want 1", p.stats.ReplicaDrops)
	}
	loc, ok := p.tables.ForwardLocation(obj)
	if !ok || loc != 1 {
		t.Errorf("post-drop location = (%v, %v), want anchor 1", loc, ok)
	}
	if len(p.replica.tracked) != 0 {
		t.Errorf("tracked = %v, want empty", p.replica.tracked)
	}
}

func TestRollWindowAnchorKeepsCopyAndStopsAdvertising(t *testing.T) {
	peers := []ids.NodeID{0, 1, 2}
	p, err := New(Config{ID: 0, Peers: peers, Tables: testTables(), Seed: 1, Replication: testReplication()})
	if err != nil {
		t.Fatal(err)
	}
	const obj = ids.ObjectID(9)
	// This proxy holds the copy and pushed a replica to proxy 2.
	if _, adopted := p.tables.ForceCache(obj, 0, 1, 0); !adopted {
		t.Fatal("setup: ForceCache failed")
	}
	p.tables.AddReplica(obj, 2, 2)
	p.replica.track(obj)

	p.rollWindow()
	if !p.tables.IsCached(obj) {
		t.Error("anchor dropped its copy; at least one holder must survive")
	}
	if _, replicas, _ := p.tables.ForwardSet(obj); replicas != nil {
		t.Errorf("anchor still advertises %v after cold roll", replicas)
	}
	if p.stats.ReplicaDrops != 0 {
		t.Errorf("ReplicaDrops = %d, want 0 (anchor keeps the copy)", p.stats.ReplicaDrops)
	}
}

func TestRollWindowKeepsHotReplica(t *testing.T) {
	peers := []ids.NodeID{0, 1, 2}
	p, err := New(Config{ID: 2, Peers: peers, Tables: testTables(), Seed: 1, Replication: testReplication()})
	if err != nil {
		t.Fatal(err)
	}
	const obj = ids.ObjectID(9)
	p.tables.ForceCache(obj, 1, 1, 0)
	p.replica.held[obj] = struct{}{}
	p.replica.track(obj)
	p.noteHit(obj) // one hit ≥ DropThreshold 1

	p.rollWindow()
	if !p.tables.IsCached(obj) {
		t.Error("hot replica dropped at roll")
	}
	if len(p.replica.tracked) != 1 {
		t.Errorf("tracked = %v, want [%d]", p.replica.tracked, obj)
	}
	if len(p.replica.hot) != 0 {
		t.Error("hit counts must reset at the window roll")
	}
	if p.stats.ReplicaHits != 1 {
		t.Errorf("ReplicaHits = %d, want 1", p.stats.ReplicaHits)
	}
}

func TestForwardAddrReplicatedPowerOfTwoChoices(t *testing.T) {
	peers := []ids.NodeID{0, 1, 2}
	p, err := New(Config{ID: 0, Peers: peers, Tables: testTables(), Seed: 1, Replication: testReplication()})
	if err != nil {
		t.Fatal(err)
	}
	const obj = ids.ObjectID(3)
	p.tables.Update(obj, 1, 1)
	p.tables.AddReplica(obj, 2, 2)

	// Tie at zero load: the lower proxy ID wins deterministically.
	to, via := p.forwardAddr(obj)
	if !via || to != 1 {
		t.Fatalf("tie-break forward = (%v, %v), want (1, true)", to, via)
	}
	// Choosing 1 charged its load estimate, so 2 must win now.
	to, _ = p.forwardAddr(obj)
	if to != 2 {
		t.Fatalf("second forward = %v, want 2 (lower load)", to)
	}
	// Pile load onto 2; routing must move back to 1.
	for i := 0; i < 8; i++ {
		p.replica.addLoad(2)
	}
	to, _ = p.forwardAddr(obj)
	if to != 1 {
		t.Fatalf("loaded forward = %v, want 1", to)
	}

	// Single known holder: plain learned forward.
	const obj2 = ids.ObjectID(4)
	p.tables.Update(obj2, 2, 2)
	to, via = p.forwardAddr(obj2)
	if !via || to != 2 {
		t.Fatalf("single-holder forward = (%v, %v), want (2, true)", to, via)
	}

	// THIS entry with no replicas still goes to the origin.
	const obj3 = ids.ObjectID(5)
	p.tables.Update(obj3, 0, 3)
	to, via = p.forwardAddr(obj3)
	if !via || to != ids.Origin {
		t.Fatalf("THIS forward = (%v, %v), want (Origin, true)", to, via)
	}
}

func TestReplicationRestartResetsController(t *testing.T) {
	p, err := New(Config{ID: 0, Peers: []ids.NodeID{0, 1}, Tables: testTables(), Seed: 1, Replication: testReplication()})
	if err != nil {
		t.Fatal(err)
	}
	const obj = ids.ObjectID(1)
	p.tables.ForceCache(obj, 0, 1, 0)
	p.noteHit(obj)
	p.replica.held[obj] = struct{}{}
	p.replica.track(obj)
	p.replica.addLoad(1)

	p.Restart(false)
	r := p.replica
	if r == nil {
		t.Fatal("controller gone after restart")
	}
	if len(r.hot) != 0 || len(r.tracked) != 0 || len(r.held) != 0 || r.loadOf(1) != 0 {
		t.Errorf("controller state survived restart: hot=%v tracked=%v held=%v load=%d",
			r.hot, r.tracked, r.held, r.loadOf(1))
	}
}
