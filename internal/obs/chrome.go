package obs

import (
	"encoding/json"
	"io"

	"github.com/adc-sim/adc/internal/ids"
)

// chromeEvent is one entry of the Chrome trace_event "traceEvents" array
// (the JSON format chrome://tracing and Perfetto load directly).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromeTid maps node IDs onto stable, positive thread IDs: origin 1,
// proxies from 100, clients from 1000.
func chromeTid(n ids.NodeID) int {
	switch {
	case n == ids.Origin:
		return 1
	case n.IsClient():
		return 1000 + n.ClientIndex()
	case n.IsProxy():
		return 100 + int(n)
	default:
		return 0
	}
}

// WriteChrome exports a trace in Chrome trace_event format: one instant
// event per protocol step on its node's row, plus one duration span per
// request attempt on the issuing client's row (inject/retry through
// delivery or timeout). Timestamps reuse Event.Time, so virtual-time ticks
// render as microseconds.
func WriteChrome(w io.Writer, events []Event) error {
	f := chromeFile{DisplayTimeUnit: "ms"}

	named := map[int]string{}
	for _, e := range events {
		// Per-step instant event.
		args := map[string]any{
			"req": e.Req.String(),
			"obj": e.Obj.String(),
		}
		switch e.Kind {
		case KindForward:
			args["to"] = e.To.String()
			args["reason"] = ForwardReasonString(e.Arg)
			args["hops"] = e.Hops
		case KindBackward:
			args["to"] = e.To.String()
			args["learned"] = e.Loc.String()
			args["outcome"] = OutcomeString(e.Arg)
		case KindHit:
			args["loc"] = e.Loc.String()
		case KindDeliver:
			args["resolver"] = e.Loc.String()
			args["fromOrigin"] = e.Arg&1 != 0
			args["hops"] = e.Hops
		case KindDrop:
			args["to"] = e.To.String()
			args["cause"] = DropCauseString(e.Arg)
		case KindRetry:
			args["prev"] = e.Prev.String()
			args["attempt"] = e.Arg
		}
		tid := chromeTid(e.Node)
		if _, ok := named[tid]; !ok {
			named[tid] = e.Node.String()
		}
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: e.Kind.String(), Ph: "i", Ts: e.Time(),
			Pid: 1, Tid: tid, S: "t", Args: args,
		})
	}

	// Per-attempt spans from the reconstructed trees.
	for _, t := range BuildTrees(events) {
		for _, a := range t.Attempts {
			if len(a.Events) == 0 {
				continue
			}
			start := a.Events[0].Time()
			end := a.Events[len(a.Events)-1].Time()
			status := "in-flight"
			switch {
			case a.Delivered:
				status = "delivered"
			case a.Abandoned:
				status = "abandoned"
			case a.TimedOut:
				status = "timed-out"
			}
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: a.ID.String(), Ph: "X", Ts: start, Dur: max64(end-start, 1),
				Pid: 1, Tid: chromeTid(t.Client),
				Args: map[string]any{"obj": t.Obj.String(), "status": status},
			})
		}
	}

	// Thread-name metadata so chrome://tracing labels rows by node.
	for tid, name := range named {
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
