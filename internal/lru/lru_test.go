package lru

import (
	"testing"
	"testing/quick"
)

func TestGetPut(t *testing.T) {
	c := New[string, int](2)
	if _, ok := c.Get("a"); ok {
		t.Error("Get on empty cache must miss")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("Get(a) = %d,%v", v, ok)
	}
	if c.Len() != 2 || c.Cap() != 2 {
		t.Errorf("Len/Cap = %d/%d", c.Len(), c.Cap())
	}
}

func TestEvictionOrder(t *testing.T) {
	c := New[int, int](2)
	c.Put(1, 1)
	c.Put(2, 2)
	c.Get(1)          // 1 is now most recent
	if !c.Put(3, 3) { // must evict 2
		t.Error("Put into full cache must report eviction")
	}
	if c.Contains(2) {
		t.Error("2 should have been evicted")
	}
	if !c.Contains(1) || !c.Contains(3) {
		t.Error("1 and 3 should remain")
	}
}

func TestPutUpdatesExisting(t *testing.T) {
	c := New[int, string](2)
	c.Put(1, "x")
	if evicted := c.Put(1, "y"); evicted {
		t.Error("updating in place must not evict")
	}
	if v, _ := c.Get(1); v != "y" {
		t.Errorf("value = %q, want y", v)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestPeekDoesNotPromote(t *testing.T) {
	c := New[int, int](2)
	c.Put(1, 1)
	c.Put(2, 2)
	c.Peek(1)
	c.Put(3, 3)
	if c.Contains(1) {
		t.Error("Peek must not refresh recency; 1 should be evicted")
	}
}

func TestRemove(t *testing.T) {
	c := New[int, int](2)
	c.Put(1, 1)
	if !c.Remove(1) {
		t.Error("Remove existing = false")
	}
	if c.Remove(1) {
		t.Error("Remove absent = true")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0", c.Len())
	}
}

func TestRemoveOldest(t *testing.T) {
	c := New[int, int](3)
	if _, _, ok := c.RemoveOldest(); ok {
		t.Error("RemoveOldest on empty cache must report !ok")
	}
	c.Put(1, 10)
	c.Put(2, 20)
	c.Get(1)
	k, v, ok := c.RemoveOldest()
	if !ok || k != 2 || v != 20 {
		t.Errorf("RemoveOldest = %d,%d,%v, want 2,20,true", k, v, ok)
	}
}

func TestOnEvict(t *testing.T) {
	var evicted []int
	c := New[int, int](1)
	c.OnEvict(func(k, _ int) { evicted = append(evicted, k) })
	c.Put(1, 1)
	c.Put(2, 2)
	c.RemoveOldest()
	if len(evicted) != 2 || evicted[0] != 1 || evicted[1] != 2 {
		t.Errorf("evicted = %v, want [1 2]", evicted)
	}
}

func TestKeysMostRecentFirst(t *testing.T) {
	c := New[int, int](3)
	c.Put(1, 1)
	c.Put(2, 2)
	c.Put(3, 3)
	c.Get(1)
	keys := c.Keys()
	want := []int{1, 3, 2}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys() = %v, want %v", keys, want)
		}
	}
}

func TestNeverExceedsCapacity(t *testing.T) {
	prop := func(keys []uint8, capSeed uint8) bool {
		capacity := int(capSeed%7) + 1
		c := New[uint8, int](capacity)
		for i, k := range keys {
			c.Put(k, i)
			if c.Len() > capacity {
				return false
			}
			if v, ok := c.Get(k); !ok || v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
