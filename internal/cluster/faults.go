package cluster

import (
	"fmt"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/sim"
)

// Fail-stop churn: the destructive counterpart of churn.go's proxy joins.
// Crashes and restarts are scheduled at virtual times and merge into the
// engine's fault plan, so they compose with message loss and jitter from
// Config.Faults under one deterministic random stream.

// ProxyCrash schedules a fail-stop failure of one proxy at a virtual time.
type ProxyCrash struct {
	// Proxy is the proxy index in [0, NumProxies).
	Proxy int
	// At is the virtual crash time (must be positive).
	At int64
	// LoseTables selects a cold restart: the proxy rebuilds its mapping
	// tables empty instead of keeping them warm. Volatile request state
	// (pending passes, timers) is lost either way.
	LoseTables bool
}

// ProxyRestart brings a crashed proxy back at a virtual time. Each restart
// must pair with an earlier ProxyCrash of the same proxy.
type ProxyRestart struct {
	// Proxy is the proxy index in [0, NumProxies).
	Proxy int
	// At is the virtual restart time (must follow the crash).
	At int64
}

// faultsActive reports whether any failure injection is configured — used
// to decide whether an unfinished client trace is a measured outcome or an
// execution error.
func (c Config) faultsActive() bool {
	return c.Faults != nil || len(c.CrashProxyAt) > 0
}

// validateFaults checks the fault/recovery configuration constraints.
func (c Config) validateFaults() error {
	if !c.faultsActive() && len(c.RestartProxyAt) == 0 && !c.Recovery.Enabled {
		return nil
	}
	if len(c.RestartProxyAt) > 0 && len(c.CrashProxyAt) == 0 {
		return fmt.Errorf("cluster: RestartProxyAt without any CrashProxyAt")
	}
	if c.Runtime != RuntimeVirtualTime {
		return fmt.Errorf("cluster: fault injection and recovery require the virtual-time runtime")
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
		for _, cr := range c.Faults.Crashes {
			if int(cr.Node) < 0 || int(cr.Node) >= c.NumProxies {
				return fmt.Errorf("cluster: crash node %v outside proxy range [0, %d)", cr.Node, c.NumProxies)
			}
		}
		if len(c.Faults.Crashes) > 0 && c.Algorithm != ADC {
			return fmt.Errorf("cluster: proxy crashes require the ADC algorithm (only ADC proxies implement restart)")
		}
	}
	if len(c.CrashProxyAt) > 0 && c.Algorithm != ADC {
		return fmt.Errorf("cluster: proxy crashes require the ADC algorithm (only ADC proxies implement restart)")
	}
	for _, cr := range c.CrashProxyAt {
		if cr.Proxy < 0 || cr.Proxy >= c.NumProxies {
			return fmt.Errorf("cluster: CrashProxyAt proxy %d outside [0, %d)", cr.Proxy, c.NumProxies)
		}
		if cr.At <= 0 {
			return fmt.Errorf("cluster: CrashProxyAt time %d must be positive", cr.At)
		}
	}
	// Every restart must match an unconsumed earlier crash of its proxy.
	used := make([]bool, len(c.CrashProxyAt))
	for _, rs := range c.RestartProxyAt {
		if rs.Proxy < 0 || rs.Proxy >= c.NumProxies {
			return fmt.Errorf("cluster: RestartProxyAt proxy %d outside [0, %d)", rs.Proxy, c.NumProxies)
		}
		found := false
		for i, cr := range c.CrashProxyAt {
			if !used[i] && cr.Proxy == rs.Proxy && cr.At < rs.At {
				used[i] = true
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("cluster: RestartProxyAt proxy %d at %d has no matching earlier crash", rs.Proxy, rs.At)
		}
	}
	return c.Recovery.Normalize().Validate()
}

// faultPlan composes the effective engine fault plan from Config.Faults
// and the CrashProxyAt/RestartProxyAt convenience spelling. It returns nil
// when no failures are configured, which keeps the engine's default path
// byte-identical to a fault-free build.
func (c Config) faultPlan() *sim.FaultPlan {
	if !c.faultsActive() {
		return nil
	}
	var plan sim.FaultPlan
	if c.Faults != nil {
		plan = *c.Faults
		plan.Crashes = append([]sim.Crash(nil), c.Faults.Crashes...)
	} else {
		plan.Seed = c.Seed
	}
	used := make([]bool, len(c.RestartProxyAt))
	for _, cr := range c.CrashProxyAt {
		crash := sim.Crash{
			Node:       ids.NodeID(cr.Proxy),
			At:         cr.At,
			LoseTables: cr.LoseTables,
		}
		// Pair with the earliest unconsumed restart of the same proxy;
		// Validate guaranteed each restart matches some crash.
		for i, rs := range c.RestartProxyAt {
			if !used[i] && rs.Proxy == cr.Proxy && rs.At > cr.At {
				crash.RestartAt = rs.At
				used[i] = true
				break
			}
		}
		plan.Crashes = append(plan.Crashes, crash)
	}
	return &plan
}
