package httpproxy

import (
	"context"
	"net/http"
	"sync"
	"time"

	"github.com/adc-sim/adc/internal/ids"
)

// Peer health. The farm used to assume every proxy is permanently alive:
// a killed peer turned every request routed through it into a hard error,
// and nothing probed, rerouted, or recovered. This file is the real-network
// mirror of the virtual-time fault/recovery layer (DESIGN.md §9): each
// proxy runs a monitor that periodically probes its peers' /healthz
// endpoints and folds in passive evidence from the fetch path (a failed
// upstream connection is a probe failure that arrived early), driving a
// per-peer state machine:
//
//	up → suspect → down → recovering → up
//
// One failure makes a peer suspect (still routable — a single timeout is
// weak evidence); FailureThreshold consecutive failures mark it down, and
// routing skips it from then on. A down peer answering probes again climbs
// through recovering and is routable only after RecoveryThreshold
// consecutive successes, so a flapping listener cannot oscillate the
// routing tables at probe rate. Transitions are timestamped and kept in a
// bounded log, which is how the chaos harness measures time-to-detect and
// time-to-recover.

// PeerState is one monitor's belief about one peer.
type PeerState uint8

const (
	// PeerUp: answering; fully routable.
	PeerUp PeerState = iota
	// PeerSuspect: at least one recent failure, threshold not reached.
	// Still routable — shedding a peer on single-sample evidence would
	// let one slow response evict a healthy resolver.
	PeerSuspect
	// PeerDown: FailureThreshold consecutive failures; not routable.
	PeerDown
	// PeerRecovering: a down peer answered again, waiting for
	// RecoveryThreshold consecutive successes; not yet routable.
	PeerRecovering
)

func (s PeerState) String() string {
	switch s {
	case PeerUp:
		return "up"
	case PeerSuspect:
		return "suspect"
	case PeerDown:
		return "down"
	case PeerRecovering:
		return "recovering"
	}
	return "unknown"
}

// routable reports whether forwarding may target a peer in this state.
func (s PeerState) routable() bool { return s == PeerUp || s == PeerSuspect }

// HealthConfig configures the per-proxy peer-health monitor.
type HealthConfig struct {
	// Enabled turns the subsystem on. Off (the zero value), no monitor
	// goroutine runs and routing behaves exactly as before.
	Enabled bool
	// ProbeInterval spaces the periodic /healthz probes (default 250ms).
	ProbeInterval time.Duration
	// FailureThreshold is how many consecutive probe/fetch failures mark
	// a peer down (default 3). Detection latency is bounded by
	// ProbeInterval × FailureThreshold plus one probe round-trip.
	FailureThreshold int
	// RecoveryThreshold is how many consecutive successes a down peer
	// needs before it is routable again (default 2).
	RecoveryThreshold int
}

// Health defaults; HealthConfig fields override.
const (
	defaultProbeInterval     = 250 * time.Millisecond
	defaultFailureThreshold  = 3
	defaultRecoveryThreshold = 2
)

// withDefaults fills zero fields.
func (c HealthConfig) withDefaults() HealthConfig {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = defaultProbeInterval
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = defaultFailureThreshold
	}
	if c.RecoveryThreshold <= 0 {
		c.RecoveryThreshold = defaultRecoveryThreshold
	}
	return c
}

// healthzPath is the liveness endpoint every proxy serves. It answers
// before any table lock: the probe asks "is the process accepting
// connections", not "is the proxy fast".
const healthzPath = "/healthz"

// HealthTransition is one timestamped state change in a monitor's log.
type HealthTransition struct {
	// Observer is the proxy whose monitor recorded the transition.
	Observer ids.NodeID `json:"observer"`
	// Peer is the peer whose state changed.
	Peer ids.NodeID `json:"peer"`
	// To is the state entered.
	To PeerState `json:"-"`
	// State is To rendered for JSON output.
	State string `json:"state"`
	// At is the wall-clock transition time.
	At time.Time `json:"at"`
}

// transitionLogCap bounds the monitor's transition log; a chaos run has
// dozens of transitions, not thousands, so dropping the oldest is safe.
const transitionLogCap = 1024

// peerHealth is the monitor's per-peer record.
type peerHealth struct {
	url   string
	state PeerState
	fails int // consecutive failures (suspect counting toward down)
	oks   int // consecutive successes (recovering counting toward up)
}

// healthMonitor probes one proxy's peers and owns their state machines.
// All state is guarded by mu; the probe loop runs in its own goroutine and
// pauses while the owning proxy is killed (a dead process does not probe).
type healthMonitor struct {
	cfg     HealthConfig
	self    ids.NodeID
	client  *http.Client
	blocked func(ids.NodeID) bool // partition check, may be nil

	mu          sync.Mutex
	peers       map[ids.NodeID]*peerHealth
	paused      bool
	probes      uint64
	probeFails  uint64
	detections  uint64
	recoveries  uint64
	transitions []HealthTransition

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// newHealthMonitor builds a monitor for the given peer address book
// (excluding self) and starts its probe loop.
func newHealthMonitor(cfg HealthConfig, self ids.NodeID, urls map[ids.NodeID]string, blocked func(ids.NodeID) bool) *healthMonitor {
	cfg = cfg.withDefaults()
	m := &healthMonitor{
		cfg:     cfg,
		self:    self,
		client:  sharedClient,
		blocked: blocked,
		peers:   make(map[ids.NodeID]*peerHealth, len(urls)),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for id, url := range urls {
		if id == self {
			continue
		}
		m.peers[id] = &peerHealth{url: url, state: PeerUp}
	}
	go m.run()
	return m
}

// close stops the probe loop and waits for it to exit.
func (m *healthMonitor) close() {
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
}

// pause/resume stop probing while the owning proxy is killed. The peer
// states freeze — a dead proxy has no beliefs worth updating — and resume
// re-probes from the frozen state.
func (m *healthMonitor) pause() {
	m.mu.Lock()
	m.paused = true
	m.mu.Unlock()
}

func (m *healthMonitor) resume() {
	m.mu.Lock()
	m.paused = false
	m.mu.Unlock()
}

// routable reports whether forwarding may target peer right now. Self is
// always routable (the local store is consulted before forwarding anyway).
func (m *healthMonitor) routable(peer ids.NodeID) bool {
	if m == nil {
		return true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ph, ok := m.peers[peer]
	if !ok {
		return true
	}
	return ph.state.routable()
}

// state returns the monitor's belief about peer (PeerUp for unknown peers).
func (m *healthMonitor) state(peer ids.NodeID) PeerState {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ph, ok := m.peers[peer]; ok {
		return ph.state
	}
	return PeerUp
}

// reportFailure folds a fetch-path connection failure into the state
// machine — passive evidence that arrives between probe ticks, so a dead
// resolver under traffic is detected faster than the probe cadence alone.
func (m *healthMonitor) reportFailure(peer ids.NodeID) {
	if m == nil {
		return
	}
	m.observe(peer, false)
}

// reportSuccess folds a successful fetch into the state machine.
func (m *healthMonitor) reportSuccess(peer ids.NodeID) {
	if m == nil {
		return
	}
	m.observe(peer, true)
}

// observe applies one observation (probe or passive) to peer's machine.
func (m *healthMonitor) observe(peer ids.NodeID, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ph, known := m.peers[peer]
	if !known {
		return
	}
	switch ph.state {
	case PeerUp:
		if ok {
			ph.fails = 0
			return
		}
		ph.fails = 1
		if ph.fails >= m.cfg.FailureThreshold {
			m.transitionLocked(ph, peer, PeerDown)
			m.detections++
			return
		}
		m.transitionLocked(ph, peer, PeerSuspect)
	case PeerSuspect:
		if ok {
			ph.fails = 0
			m.transitionLocked(ph, peer, PeerUp)
			return
		}
		ph.fails++
		if ph.fails >= m.cfg.FailureThreshold {
			m.transitionLocked(ph, peer, PeerDown)
			m.detections++
		}
	case PeerDown:
		if !ok {
			return
		}
		ph.oks = 1
		if ph.oks >= m.cfg.RecoveryThreshold {
			m.recoverLocked(ph, peer)
			return
		}
		m.transitionLocked(ph, peer, PeerRecovering)
	case PeerRecovering:
		if !ok {
			ph.oks = 0
			m.transitionLocked(ph, peer, PeerDown)
			return
		}
		ph.oks++
		if ph.oks >= m.cfg.RecoveryThreshold {
			m.recoverLocked(ph, peer)
		}
	}
}

// recoverLocked completes a down peer's climb back to up.
func (m *healthMonitor) recoverLocked(ph *peerHealth, peer ids.NodeID) {
	ph.fails = 0
	m.transitionLocked(ph, peer, PeerUp)
	m.recoveries++
}

// transitionLocked moves ph to state and appends to the bounded log.
func (m *healthMonitor) transitionLocked(ph *peerHealth, peer ids.NodeID, to PeerState) {
	ph.state = to
	if len(m.transitions) >= transitionLogCap {
		copy(m.transitions, m.transitions[1:])
		m.transitions = m.transitions[:transitionLogCap-1]
	}
	m.transitions = append(m.transitions, HealthTransition{
		Observer: m.self,
		Peer:     peer,
		To:       to,
		State:    to.String(),
		At:       time.Now(),
	})
}

// Transitions copies the monitor's transition log.
func (m *healthMonitor) Transitions() []HealthTransition {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]HealthTransition, len(m.transitions))
	copy(out, m.transitions)
	return out
}

// run is the probe loop: every ProbeInterval, probe all peers in parallel
// (one dead peer's timeout must not delay detection of another).
func (m *healthMonitor) run() {
	defer close(m.done)
	t := time.NewTicker(m.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
		}
		m.probeAll()
	}
}

// probeAll issues one probe round. Probes share the pooled client but are
// individually bounded by the probe interval, so a wedged peer costs one
// tick, not a dial timeout.
func (m *healthMonitor) probeAll() {
	m.mu.Lock()
	if m.paused {
		m.mu.Unlock()
		return
	}
	type target struct {
		id  ids.NodeID
		url string
	}
	targets := make([]target, 0, len(m.peers))
	for id, ph := range m.peers {
		targets = append(targets, target{id, ph.url})
	}
	m.mu.Unlock()

	var wg sync.WaitGroup
	wg.Add(len(targets))
	for _, tg := range targets {
		go func(tg target) {
			defer wg.Done()
			ok := m.probe(tg.id, tg.url)
			m.mu.Lock()
			m.probes++
			if !ok {
				m.probeFails++
			}
			m.mu.Unlock()
			m.observe(tg.id, ok)
		}(tg)
	}
	wg.Wait()
}

// probe checks one peer's /healthz. A partitioned peer fails without a
// request — the chaos harness's partitions cut probe traffic too.
func (m *healthMonitor) probe(id ids.NodeID, url string) bool {
	if m.blocked != nil && m.blocked(id) {
		return false
	}
	ctx, cancel := context.WithTimeout(context.Background(), m.cfg.ProbeInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+healthzPath, nil)
	if err != nil {
		return false
	}
	resp, err := m.client.Do(req)
	if err != nil {
		return false
	}
	_ = resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// PeerHealthVar is one peer's row in /debug/vars' health section.
type PeerHealthVar struct {
	Peer  string `json:"peer"`
	State string `json:"state"`
}

// HealthVars is the health section of /debug/vars.
type HealthVars struct {
	Probes      uint64          `json:"probes"`
	ProbeFails  uint64          `json:"probe_fails"`
	Detections  uint64          `json:"detections"`
	Recoveries  uint64          `json:"recoveries"`
	Transitions int             `json:"transitions"`
	Peers       []PeerHealthVar `json:"peers"`
}

// vars snapshots the monitor for /debug/vars, peers sorted by ID.
func (m *healthMonitor) vars() *HealthVars {
	m.mu.Lock()
	defer m.mu.Unlock()
	v := &HealthVars{
		Probes:      m.probes,
		ProbeFails:  m.probeFails,
		Detections:  m.detections,
		Recoveries:  m.recoveries,
		Transitions: len(m.transitions),
	}
	idsSorted := make([]ids.NodeID, 0, len(m.peers))
	for id := range m.peers {
		idsSorted = append(idsSorted, id)
	}
	for i := 1; i < len(idsSorted); i++ {
		for j := i; j > 0 && idsSorted[j] < idsSorted[j-1]; j-- {
			idsSorted[j], idsSorted[j-1] = idsSorted[j-1], idsSorted[j]
		}
	}
	for _, id := range idsSorted {
		v.Peers = append(v.Peers, PeerHealthVar{Peer: id.String(), State: m.peers[id].state.String()})
	}
	return v
}
