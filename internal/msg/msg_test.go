package msg

import (
	"testing"

	"github.com/adc-sim/adc/internal/ids"
)

func TestAtMaxHops(t *testing.T) {
	r := &Request{MaxHops: 2}
	if r.AtMaxHops() {
		t.Error("empty path must not be at max hops")
	}
	r.Path = []ids.NodeID{1, 2}
	if !r.AtMaxHops() {
		t.Error("path at bound must report max hops")
	}
	unbounded := &Request{MaxHops: 0, Path: make([]ids.NodeID, 100)}
	if unbounded.AtMaxHops() {
		t.Error("MaxHops 0 must mean unbounded (the paper's setting)")
	}
}

func TestReplyToCopiesIdentity(t *testing.T) {
	req := &Request{
		ID:     ids.NewRequestID(1, 2),
		Object: 9,
		Client: ids.Client(1),
		Path:   []ids.NodeID{3, 4},
		Hops:   5,
	}
	rep := ReplyTo(req)
	if rep.ID != req.ID || rep.Object != req.Object || rep.Client != req.Client {
		t.Errorf("identity not copied: %+v", rep)
	}
	if rep.Resolver != ids.None {
		t.Errorf("resolver must start as None (the paper's NULL), got %v", rep.Resolver)
	}
	if rep.Hops != 5 || rep.PathLen != 2 {
		t.Errorf("hops/pathlen = %d/%d", rep.Hops, rep.PathLen)
	}
}

func TestNextBackwardWalksPathInReverse(t *testing.T) {
	rep := &Reply{Client: ids.Client(0), Path: []ids.NodeID{1, 2, 3}}
	want := []ids.NodeID{3, 2, 1}
	for _, w := range want {
		next, onPath := rep.NextBackward()
		if !onPath || next != w {
			t.Fatalf("NextBackward = %v,%v, want %v,true", next, onPath, w)
		}
	}
	next, onPath := rep.NextBackward()
	if onPath || next != ids.Client(0) {
		t.Errorf("exhausted path must return the client, got %v,%v", next, onPath)
	}
}

func TestNextBackwardDuplicatePath(t *testing.T) {
	// Loops put the same proxy on the path twice; backwarding must
	// visit it twice (§III.1).
	rep := &Reply{Client: ids.Client(0), Path: []ids.NodeID{1, 2, 1}}
	seq := []ids.NodeID{}
	for {
		next, onPath := rep.NextBackward()
		if !onPath {
			break
		}
		seq = append(seq, next)
	}
	if len(seq) != 3 || seq[0] != 1 || seq[1] != 2 || seq[2] != 1 {
		t.Errorf("backward sequence = %v, want [1 2 1]", seq)
	}
}

func TestDest(t *testing.T) {
	if (&Request{To: 4}).Dest() != 4 {
		t.Error("request Dest wrong")
	}
	if (&Reply{To: ids.Origin}).Dest() != ids.Origin {
		t.Error("reply Dest wrong")
	}
}
