package sim_test

import (
	"testing"

	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/proxy"
	"github.com/adc-sim/adc/internal/sim"
	"github.com/adc-sim/adc/internal/trace"
)

// benchObjects builds a deterministic request stream over a hot population,
// shared by every engine benchmark so ns/op values are comparable across
// engines and across commits (BENCH_engine.json).
func benchObjects(n, population int) []ids.ObjectID {
	objs := make([]ids.ObjectID, n)
	state := uint64(0x9E3779B97F4A7C15)
	for i := range objs {
		state = state*6364136223846793005 + 1442695040888963407
		objs[i] = ids.ObjectID(state % uint64(population))
	}
	return objs
}

// adcRig wires the standard 5-proxy ADC array plus origin onto an engine.
type registrar interface {
	Register(n sim.Node) error
}

func buildADCArray(b *testing.B, eng registrar, nProxies int) []ids.NodeID {
	b.Helper()
	proxyIDs := make([]ids.NodeID, nProxies)
	for i := range proxyIDs {
		proxyIDs[i] = ids.NodeID(i)
	}
	for _, id := range proxyIDs {
		p, err := proxy.New(proxy.Config{
			ID:    id,
			Peers: proxyIDs,
			Tables: core.Config{
				SingleSize:   2000,
				MultipleSize: 2000,
				CachingSize:  1000,
			},
			Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Register(p); err != nil {
			b.Fatal(err)
		}
	}
	if err := eng.Register(sim.NewOrigin()); err != nil {
		b.Fatal(err)
	}
	return proxyIDs
}

// BenchmarkVEngineADC is the headline engine benchmark: a 5-proxy ADC
// array driven by one closed-loop client on the virtual-time engine. It
// exercises the full hot path — event heap, node dispatch, message and
// path churn — and is the number BENCH_engine.json tracks across commits.
func BenchmarkVEngineADC(b *testing.B) {
	const requests = 20_000
	objs := benchObjects(requests, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	var delivered uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng := sim.NewVEngine(sim.DefaultLatencyModel())
		proxyIDs := buildADCArray(b, eng, 5)
		cl, err := sim.NewClient(sim.ClientConfig{
			Source:  trace.NewSliceSource(objs),
			Proxies: proxyIDs,
			Seed:    1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Register(cl); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
		delivered = eng.Delivered()
	}
	b.ReportMetric(float64(delivered)/float64(b.Elapsed().Seconds())*float64(b.N), "events/s")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(delivered), "ns/event")
}

// BenchmarkVEngineEcho isolates the engine itself: a single echo node and
// one closed-loop client, so nearly all time is heap push/pop, dispatch
// and message management rather than ADC table work.
func BenchmarkVEngineEcho(b *testing.B) {
	const requests = 50_000
	objs := benchObjects(requests, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng := sim.NewVEngine(sim.DefaultLatencyModel())
		if err := eng.Register(sim.NewOrigin()); err != nil {
			b.Fatal(err)
		}
		cl, err := sim.NewClient(sim.ClientConfig{
			Source:  trace.NewSliceSource(objs),
			Proxies: []ids.NodeID{ids.Origin},
			Seed:    1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Register(cl); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVEngineOpenLoop stresses the discrete-event heap with many
// concurrently outstanding requests (timer events interleaved with
// transfers), the regime where heap operation cost dominates.
func BenchmarkVEngineOpenLoop(b *testing.B) {
	const requests = 20_000
	objs := benchObjects(requests, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng := sim.NewVEngine(sim.DefaultLatencyModel())
		proxyIDs := buildADCArray(b, eng, 5)
		cl, err := sim.NewOpenLoopClient(sim.OpenLoopConfig{
			Source:        trace.NewSliceSource(objs),
			Proxies:       proxyIDs,
			Seed:          1,
			IntervalTicks: 1000,
			Poisson:       true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Register(cl); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineADC is the sequential (FIFO) engine on the same workload,
// isolating dispatch and message costs without the event heap.
func BenchmarkEngineADC(b *testing.B) {
	const requests = 20_000
	objs := benchObjects(requests, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng := sim.NewEngine()
		proxyIDs := buildADCArray(b, eng, 5)
		cl, err := sim.NewClient(sim.ClientConfig{
			Source:  trace.NewSliceSource(objs),
			Proxies: proxyIDs,
			Seed:    1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Register(cl); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
