// Package coordinator implements the authors' own first-generation
// baseline: "the self-organizing approach of proxy load balancing by the
// usage of a central coordinator in front of all running proxies" (§II.1,
// ref [26]). Every request and every reply passes the coordinator — "the
// clear bottleneck situation for the overall system" the paper cites as
// the motivation for decentralising into ADC — and requests are assigned
// "without considering previously stored objects".
//
// The original used reinforcement learning over response times to pick the
// best-performing proxy; with homogeneous simulated proxies that policy
// degenerates to an even spread, so this implementation assigns
// round-robin (documented substitution: preserves the structural
// properties — central chokepoint, content-blind placement — that the
// comparison is about).
package coordinator

import (
	"fmt"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/lru"
	"github.com/adc-sim/adc/internal/metrics"
	"github.com/adc-sim/adc/internal/msg"
	"github.com/adc-sim/adc/internal/sim"
)

// Coordinator is the central dispatcher. It holds no cache; it only
// assigns requests to workers and relays replies back to clients.
type Coordinator struct {
	id      ids.NodeID
	workers []ids.NodeID
	next    int
	stats   metrics.ProxyStats
}

var _ sim.Node = (*Coordinator)(nil)

// NewCoordinator builds the dispatcher for the given worker proxies.
func NewCoordinator(id ids.NodeID, workers []ids.NodeID) (*Coordinator, error) {
	if !id.IsProxy() {
		return nil, fmt.Errorf("coordinator: %v is not a proxy ID", id)
	}
	if len(workers) == 0 {
		return nil, fmt.Errorf("coordinator: needs at least one worker")
	}
	ws := make([]ids.NodeID, len(workers))
	copy(ws, workers)
	return &Coordinator{id: id, workers: ws}, nil
}

// ID implements sim.Node.
func (c *Coordinator) ID() ids.NodeID { return c.id }

// Stats snapshots the dispatcher's counters.
func (c *Coordinator) Stats() metrics.ProxyStats { return c.stats }

// Handle implements sim.Node.
func (c *Coordinator) Handle(ctx sim.Context, m msg.Message) {
	switch t := m.(type) {
	case *msg.Request:
		// Content-blind assignment: round-robin over the workers.
		c.stats.Requests++
		c.stats.ForwardRandom++
		t.Sender = c.id
		t.Path = append(t.Path, c.id)
		t.To = c.workers[c.next%len(c.workers)]
		c.next++
		ctx.Send(t)
	case *msg.Reply:
		// Feedback passes back through the coordinator (§II.1: "all
		// requests and feedbacks have to pass the coordinator").
		c.stats.RepliesSeen++
		next, _ := t.NextBackward()
		t.To = next
		ctx.Send(t)
	}
}

// Worker is one cache node behind the coordinator: a plain LRU cache that
// stores every passing object and fetches misses from the origin.
type Worker struct {
	id    ids.NodeID
	cache *lru.Cache[ids.ObjectID, struct{}]
	stats metrics.ProxyStats
}

var _ sim.Node = (*Worker)(nil)

// NewWorker builds one cache node.
func NewWorker(id ids.NodeID, cacheSize int) (*Worker, error) {
	if !id.IsProxy() {
		return nil, fmt.Errorf("coordinator: %v is not a proxy ID", id)
	}
	if cacheSize <= 0 {
		return nil, fmt.Errorf("coordinator: cache size must be positive, got %d", cacheSize)
	}
	return &Worker{id: id, cache: lru.New[ids.ObjectID, struct{}](cacheSize)}, nil
}

// ID implements sim.Node.
func (w *Worker) ID() ids.NodeID { return w.id }

// Stats snapshots the worker's counters.
func (w *Worker) Stats() metrics.ProxyStats { return w.stats }

// CacheLen returns the number of cached objects.
func (w *Worker) CacheLen() int { return w.cache.Len() }

// Handle implements sim.Node.
func (w *Worker) Handle(ctx sim.Context, m msg.Message) {
	switch t := m.(type) {
	case *msg.Request:
		w.stats.Requests++
		if _, ok := w.cache.Get(t.Object); ok {
			w.stats.LocalHits++
			rep := sim.Resolve(ctx, t)
			rep.Resolver = w.id
			rep.Cached = true
			next, _ := rep.NextBackward()
			rep.To = next
			ctx.Send(rep)
			return
		}
		w.stats.ForwardOrigin++
		t.Sender = w.id
		t.Path = append(t.Path, w.id)
		t.To = ids.Origin
		ctx.Send(t)
	case *msg.Reply:
		w.stats.RepliesSeen++
		w.stats.CacheInsertions++
		if w.cache.Put(t.Object, struct{}{}) {
			w.stats.CacheEvictions++
		}
		next, _ := t.NextBackward()
		t.To = next
		ctx.Send(t)
	}
}
