package httpproxy

import (
	"net/http"
	"sync"

	"github.com/adc-sim/adc/internal/ids"
)

// Miss coalescing (singleflight). Under a flash crowd, N concurrent
// requests for the same cold object used to produce N identical upstream
// chains; the materialized-trace cache solved the same stampede in-process
// (workload.TraceCache), and this lifts the pattern onto the proxy miss
// path: the first miss becomes the flight leader and performs the real
// upstream fetch, every concurrent duplicate waits on the flight and
// shares the leader's response. Each waiter still runs its own
// Receive_Reply table update, so ADC's learning sees every request.
//
// Coalescing is restricted to entry requests (X-Adc-Forwards == 0). A
// forwarded hop is part of another proxy's chain; letting it join a
// flight whose leader's own chain may pass through that proxy would tie a
// waits-for knot across the fleet (P's leader waits on Q, Q's leader
// waits on P). Entry requests are never on anyone's chain, so a flight
// leader's fetch can only block on non-coalesced work, which terminates
// via loop detection or the origin.

// flightResult is the part of an upstream response every waiter shares.
// The body is written verbatim to each waiter and stored at most once;
// payloads are immutable, so sharing the slice is safe.
type flightResult struct {
	body   []byte
	hdr    http.Header
	status int
	err    error
}

// flight is one in-progress upstream fetch.
type flight struct {
	done chan struct{}
	res  flightResult
}

// flightGroup deduplicates concurrent fetches per object.
type flightGroup struct {
	mu sync.Mutex
	m  map[ids.ObjectID]*flight
}

// do returns fn's result, either by running it (leader) or by waiting for
// the flight a concurrent leader already started. shared reports whether
// the caller rode along instead of fetching.
func (g *flightGroup) do(obj ids.ObjectID, fn func() flightResult) (res flightResult, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[ids.ObjectID]*flight)
	}
	if f, ok := g.m[obj]; ok {
		g.mu.Unlock()
		<-f.done
		return f.res, true
	}
	f := &flight{done: make(chan struct{})}
	g.m[obj] = f
	g.mu.Unlock()

	f.res = fn()

	// Retire the flight before waking waiters so a request arriving
	// after completion starts a fresh fetch instead of reading a stale
	// result.
	g.mu.Lock()
	delete(g.m, obj)
	g.mu.Unlock()
	close(f.done)
	return f.res, false
}
