package workload

import (
	"math"
	"testing"

	"github.com/adc-sim/adc/internal/ids"
)

// sliceSrc avoids importing internal/trace (which imports this package).
type sliceSrc struct {
	objs []ids.ObjectID
	pos  int
}

func (s *sliceSrc) Total() int { return len(s.objs) }
func (s *sliceSrc) Next() (ids.ObjectID, bool) {
	if s.pos >= len(s.objs) {
		return 0, false
	}
	o := s.objs[s.pos]
	s.pos++
	return o, true
}

func TestAnalyzeEmpty(t *testing.T) {
	st := Analyze(&sliceSrc{})
	if st.Requests != 0 || st.Distinct != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestAnalyzeKnownStream(t *testing.T) {
	// 1,1,1,2,2,3 → 6 requests, 3 distinct, 1 one-timer,
	// recurring share 5/6, hottest object 3 requests.
	st := Analyze(&sliceSrc{objs: []ids.ObjectID{1, 1, 1, 2, 2, 3}})
	if st.Requests != 6 || st.Distinct != 3 || st.OneTimers != 1 {
		t.Errorf("stats = %+v", st)
	}
	if math.Abs(st.RecurringShare-5.0/6.0) > 1e-12 {
		t.Errorf("recurring share = %v", st.RecurringShare)
	}
	if st.MaxObjectRequests != 3 {
		t.Errorf("max object requests = %d", st.MaxObjectRequests)
	}
	// Top 1% rounds up to 1 object: the hottest, 3/6 of requests.
	if math.Abs(st.Top1Share-0.5) > 1e-12 {
		t.Errorf("top1 share = %v", st.Top1Share)
	}
}

func TestAnalyzeGeneratedWorkload(t *testing.T) {
	g, err := New(DefaultConfig(40_000))
	if err != nil {
		t.Fatal(err)
	}
	st := Analyze(g)
	if st.Requests != 40_000 {
		t.Errorf("requests = %d", st.Requests)
	}
	// With 30% one-timers and a mostly-unique fill phase, the
	// recurring share must sit well below 1 but above 0.5 (Zipf head).
	if st.RecurringShare < 0.5 || st.RecurringShare > 0.9 {
		t.Errorf("recurring share = %v, want in [0.5, 0.9]", st.RecurringShare)
	}
	// Zipf concentration: the top 1% of objects must carry far more
	// than 1% of requests.
	if st.Top1Share < 0.05 {
		t.Errorf("top1 share = %v, want >= 0.05", st.Top1Share)
	}
	if st.Top10Share <= st.Top1Share {
		t.Error("top10 share must exceed top1 share")
	}
}
