// Command adcsweep runs the paper's parameter-sensitivity study (§V.3):
// each mapping table swept over the 5k–30k grid (scaled) with the other
// two held at reference size, reporting hit rate (Fig. 13), hops
// (Fig. 14) or wall-clock processing time (Fig. 15).
//
// Examples:
//
//	adcsweep                         # hits + hops sweep at 1/10 scale
//	adcsweep -metric time            # Fig. 15 on the paper-faithful O(n) tables
//	adcsweep -scale 1 -metric hits   # full paper scale
//	adcsweep -csv out.csv            # machine-readable output
//	adcsweep -metric resilience      # hit rate & completion vs message loss
//	adcsweep -metric convergence     # location-convergence time vs cache size
//	adcsweep -metric loadspread      # load imbalance ± hot-object replication
//
// Reports go to stdout; progress and notices go to stderr (so piped CSV
// stays clean). -quiet silences stderr entirely; -v adds debug detail.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"github.com/adc-sim/adc"
	"github.com/adc-sim/adc/internal/clilog"
	"github.com/adc-sim/adc/internal/profiling"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "adcsweep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("adcsweep", flag.ContinueOnError)
	var (
		scale      = fs.Float64("scale", 0.1, "scale of the paper's setup (1.0 = 3.99M requests)")
		seed       = fs.Int64("seed", 1, "random seed")
		proxies    = fs.Int("proxies", 5, "number of proxies")
		metric     = fs.String("metric", "hits", "metric: hits, hops, time, resilience, convergence or loadspread")
		losses     = fs.String("losses", "", "resilience loss rates, comma-separated (default 0,0.005,0.01,0.02,0.05)")
		recovery   = fs.String("recovery", "", "resilience recovery parameters, e.g. 'timeout=400000,retries=8' (empty = defaults)")
		backend    = fs.String("backend", "", "ordered-table backend: btree (default), slice, skiplist or list")
		csvPath    = fs.String("csv", "", "also write CSV to this file")
		parallel   = fs.Int("parallel", runtime.NumCPU(), "concurrent simulations (1 = sequential; use 1 for -metric time)")
		shards     = fs.Int("shards", 0, "run each simulation on the parallel engine with this many shards (0 = sequential; hits/hops only)")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file")
		verbose    = fs.Bool("v", false, "verbose stderr logging")
		quiet      = fs.Bool("quiet", false, "silence stderr progress and notices")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	log := clilog.FromFlags(*verbose, *quiet)
	switch *metric {
	case "hits", "hops", "time", "resilience", "convergence", "loadspread":
	default:
		return fmt.Errorf("unknown metric %q (want hits, hops, time, resilience, convergence or loadspread)", *metric)
	}
	if *shards < 0 {
		return fmt.Errorf("-shards must be non-negative, got %d", *shards)
	}
	if *shards > 0 && *metric == "time" {
		// Fig. 15 measures the sequential engine's wall clock; running it
		// sharded would time a different machine.
		return fmt.Errorf("-shards does not apply to -metric time")
	}
	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}

	profile := adc.Profile{
		Scale: *scale, Seed: *seed, Proxies: *proxies, Parallel: *parallel,
		Backend: adc.TableBackend(*backend), Shards: *shards,
	}
	profile.Progress = progressLine(log)

	switch *metric {
	case "resilience":
		if err := runResilience(profile, *losses, *recovery, *csvPath, log); err != nil {
			return err
		}
		return stopProfiles()
	case "convergence":
		if err := runConvergence(profile, *csvPath, log); err != nil {
			return err
		}
		return stopProfiles()
	case "loadspread":
		if err := runLoadSpread(profile, *csvPath, log); err != nil {
			return err
		}
		return stopProfiles()
	}

	var pts []adc.SweepPoint
	if *metric == "time" {
		log.Infof("running Fig. 15 timing sweep on paper-faithful O(n) tables; this is deliberately slow…")
		pts, err = adc.TimingSweep(profile)
	} else {
		pts, err = adc.Sweep(profile)
	}
	log.EndProgress()
	if err != nil {
		return err
	}
	if err := stopProfiles(); err != nil {
		return err
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	switch *metric {
	case "hits":
		fmt.Fprintln(w, "table\tsize\thit rate (post-fill)")
		for _, pt := range pts {
			fmt.Fprintf(w, "%s\t%d\t%.4f\n", pt.Table, pt.Size, pt.HitRate)
		}
	case "hops":
		fmt.Fprintln(w, "table\tsize\thops/request (post-fill)")
		for _, pt := range pts {
			fmt.Fprintf(w, "%s\t%d\t%.3f\n", pt.Table, pt.Size, pt.Hops)
		}
	case "time":
		fmt.Fprintln(w, "table\tsize\tprocessing time")
		for _, pt := range pts {
			fmt.Fprintf(w, "%s\t%d\t%v\n", pt.Table, pt.Size, pt.Elapsed.Round(1e6))
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close() //nolint:errcheck // close error checked below
		fmt.Fprintln(f, "table,size,hit_rate,hops,elapsed_ms")
		for _, pt := range pts {
			fmt.Fprintf(f, "%s,%d,%.6f,%.4f,%.1f\n",
				pt.Table, pt.Size, pt.HitRate, pt.Hops,
				float64(pt.Elapsed.Microseconds())/1000)
		}
		if err := f.Close(); err != nil {
			return err
		}
		log.Infof("wrote %s", *csvPath)
	}
	return nil
}

// runResilience runs the message-loss study: hit rate and completion vs
// loss rate, with and without the recovery protocol.
func runResilience(profile adc.Profile, lossList, recoverySpec, csvPath string, log *clilog.Logger) error {
	var rates []float64
	if lossList != "" {
		for _, s := range strings.Split(lossList, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return fmt.Errorf("bad loss rate %q: %w", s, err)
			}
			rates = append(rates, r)
		}
	}
	rec, err := adc.ParseRecoverySpec(recoverySpec)
	if err != nil {
		return err
	}
	pts, err := adc.LossSweep(profile, rates, rec)
	log.EndProgress()
	if err != nil {
		return err
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "loss\trecovery\thit rate\tcompletion\tdropped\tretries\tabandoned\tleaked pending")
	for _, pt := range pts {
		fmt.Fprintf(w, "%.3f\t%v\t%.4f\t%.4f\t%d\t%d\t%d\t%d\n",
			pt.Loss, pt.Recovery, pt.HitRate, pt.Completion,
			pt.Dropped, pt.Retries, pt.Abandoned, pt.LeakedPending)
	}
	if err := w.Flush(); err != nil {
		return err
	}

	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close() //nolint:errcheck // close error checked below
		fmt.Fprintln(f, "loss,recovery,hit_rate,completion,mean_response,dropped,timeouts,retries,abandoned,leaked_pending")
		for _, pt := range pts {
			fmt.Fprintf(f, "%.4f,%v,%.6f,%.6f,%.1f,%d,%d,%d,%d,%d\n",
				pt.Loss, pt.Recovery, pt.HitRate, pt.Completion, pt.MeanResponse,
				pt.Dropped, pt.Timeouts, pt.Retries, pt.Abandoned, pt.LeakedPending)
		}
		if err := f.Close(); err != nil {
			return err
		}
		log.Infof("wrote %s", csvPath)
	}
	return nil
}

// runConvergence runs the location-convergence study: how fast proxies
// reach lasting agreement on object locations, vs caching-table size.
func runConvergence(profile adc.Profile, csvPath string, log *clilog.Logger) error {
	pts, err := adc.ConvergenceSweep(profile, nil)
	log.EndProgress()
	if err != nil {
		return err
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "caching size\tobjects\tconverged\tmean time (ticks)\tmax time (ticks)\thit rate")
	for _, pt := range pts {
		fmt.Fprintf(w, "%d\t%d\t%d\t%.0f\t%d\t%.4f\n",
			pt.Size, pt.Objects, pt.Converged, pt.MeanTime, pt.MaxTime, pt.HitRate)
	}
	if err := w.Flush(); err != nil {
		return err
	}

	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close() //nolint:errcheck // close error checked below
		fmt.Fprintln(f, "caching_size,objects,converged,mean_time_ticks,max_time_ticks,hit_rate")
		for _, pt := range pts {
			fmt.Fprintf(f, "%d,%d,%d,%.1f,%d,%.6f\n",
				pt.Size, pt.Objects, pt.Converged, pt.MeanTime, pt.MaxTime, pt.HitRate)
		}
		if err := f.Close(); err != nil {
			return err
		}
		log.Infof("wrote %s", csvPath)
	}
	return nil
}

// runLoadSpread runs the load-imbalance study: per-proxy load spread with
// and without hot-object replication, against the hashing baselines, on an
// open-loop shifting-Zipf stream. "mw share" / "mw peak" are the mean
// windowed max/mean reception share and the mean hottest-proxy receptions
// per window (warmup skipped) — the statistics where the transient
// post-shift hotspot is visible; max/mean and gini are run totals.
func runLoadSpread(profile adc.Profile, csvPath string, log *clilog.Logger) error {
	pts, err := adc.ReplicationSweep(profile, adc.ReplicationOptions{})
	log.EndProgress()
	if err != nil {
		return err
	}

	label := func(pt adc.ReplicationPoint) string {
		if !pt.Replicated {
			return pt.Algorithm
		}
		return fmt.Sprintf("%s t=%d r=%d", pt.Algorithm, pt.HotThreshold, pt.MaxReplicas)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "config\thit rate\tp99 (ticks)\tmw share\tmw peak\tmax/mean\tgini\tcached\tpushes\tdrops\trep hits")
	for _, pt := range pts {
		fmt.Fprintf(w, "%s\t%.4f\t%.0f\t%.4f\t%.1f\t%.4f\t%.4f\t%d\t%d\t%d\t%d\n",
			label(pt), pt.HitRate, pt.P99Response,
			pt.MeanWindowShare, pt.MeanWindowPeak, pt.MaxMeanShare, pt.GiniShare,
			pt.CachedEntries, pt.ReplicaPushes, pt.ReplicaDrops, pt.ReplicaHits)
	}
	if err := w.Flush(); err != nil {
		return err
	}

	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close() //nolint:errcheck // close error checked below
		fmt.Fprintln(f, "algorithm,replicated,hot_threshold,max_replicas,hit_rate,p99_ticks,mean_response,mw_share,mw_peak,max_mean_share,gini,cached_entries,pushes,drops,replica_hits")
		for _, pt := range pts {
			fmt.Fprintf(f, "%s,%v,%d,%d,%.6f,%.1f,%.1f,%.6f,%.2f,%.6f,%.6f,%d,%d,%d,%d\n",
				pt.Algorithm, pt.Replicated, pt.HotThreshold, pt.MaxReplicas,
				pt.HitRate, pt.P99Response, pt.MeanResponse,
				pt.MeanWindowShare, pt.MeanWindowPeak, pt.MaxMeanShare, pt.GiniShare,
				pt.CachedEntries, pt.ReplicaPushes, pt.ReplicaDrops, pt.ReplicaHits)
		}
		if err := f.Close(); err != nil {
			return err
		}
		log.Infof("wrote %s", csvPath)
	}
	return nil
}

// progressLine returns a Profile.Progress callback that rewrites one
// carriage-returned status line with run counts, the resolved pool width
// and engine throughput. The logger suppresses it under -quiet and keeps
// it off stdout always.
func progressLine(log *clilog.Logger) func(adc.Progress) {
	start := time.Now()
	return func(p adc.Progress) {
		elapsed := time.Since(start).Seconds()
		line := fmt.Sprintf("run %d/%d  %d workers  %.1f runs/s",
			p.Done, p.Total, p.Workers, float64(p.Done)/elapsed)
		if p.Events > 0 {
			line += fmt.Sprintf("  %.1fM events/s", float64(p.Events)/elapsed/1e6)
		}
		log.Progressf("%s  %s elapsed", line, time.Since(start).Round(time.Second))
	}
}
