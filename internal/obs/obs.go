// Package obs is the observability layer: a request-path tracer shared by
// the simulator engines and the HTTP runtime. It records one Event per
// protocol step — injection, forwarding, loop detection, cache hits,
// backwarding, promotion/demotion, drops, retransmissions — keyed by
// RequestID, and reconstructs complete request trees from them (including
// the recovery protocol's retransmission chains, which run under fresh
// request IDs linked by Prev).
//
// The paper's central claims are path properties — convergence to one
// resolver per object via backwarding (§IV.2), bounded forwarding chains
// (§III.1) — so the tracer exists to make paths first-class data: JSONL for
// tools, Chrome trace_event for chrome://tracing, and derived metrics such
// as per-object convergence time.
//
// Cost discipline: a nil *Tracer is the disabled state. Every emit site
// guards with a nil check plus Enabled(kind), so a disabled tracer adds one
// predictable branch and zero allocations to the hot path, keeping the
// golden determinism tests and BenchmarkVEngineADC byte-identical.
package obs

import (
	"fmt"
	"sync"
	"time"

	"github.com/adc-sim/adc/internal/ids"
)

// Kind identifies one traced protocol step.
type Kind uint8

// Event kinds. The numeric values are stable: they appear in JSONL output.
const (
	// KindInject is a client issuing the first attempt of a logical
	// request (Node=client, To=entry proxy).
	KindInject Kind = iota
	// KindForward is a proxy forwarding a request (Node=proxy, To=next
	// hop, Arg=forward reason).
	KindForward
	// KindHit is a local cache hit at a proxy (Node=proxy, Loc=Node).
	KindHit
	// KindOriginResolve is the origin server answering a request.
	KindOriginResolve
	// KindBackward is a proxy processing a backwarding reply (Node=proxy,
	// To=next backward hop, Loc=the location learned into the tables,
	// Arg=encoded table outcome).
	KindBackward
	// KindDeliver is a reply reaching its client (Arg bit 0 = FromOrigin,
	// Loc=resolver).
	KindDeliver
	// KindDrop is the engine discarding an in-flight message
	// (Arg=drop cause; Node=sender, or None for crash-time drops).
	KindDrop
	// KindTimeout is a client attempt timing out (recovery protocol).
	KindTimeout
	// KindRetry is a client retransmitting under a fresh ID (Req=new
	// attempt, Prev=the superseded attempt, Arg=retry ordinal).
	KindRetry
	// KindAbandon is a client giving up after the retry budget.
	KindAbandon
	// KindExpire is a proxy expiring a pending loop-detection entry
	// (Arg=pass count surrendered).
	KindExpire
	// KindInvalidate is a proxy demoting a stale learned location.
	KindInvalidate
	// KindStaleReply is a duplicate/late reply discarded by a client.
	KindStaleReply

	numKinds
)

// kindNames maps kinds to their stable JSONL spelling.
var kindNames = [numKinds]string{
	KindInject:        "inject",
	KindForward:       "forward",
	KindHit:           "hit",
	KindOriginResolve: "origin",
	KindBackward:      "backward",
	KindDeliver:       "deliver",
	KindDrop:          "drop",
	KindTimeout:       "timeout",
	KindRetry:         "retry",
	KindAbandon:       "abandon",
	KindExpire:        "expire",
	KindInvalidate:    "invalidate",
	KindStaleReply:    "stale-reply",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind reverses Kind.String.
func ParseKind(s string) (Kind, bool) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), true
		}
	}
	return 0, false
}

// Forward reasons (Event.Arg on KindForward events).
const (
	// ReasonLearned: a mapping-table entry directed the forward (Fig. 6).
	ReasonLearned int64 = iota
	// ReasonRandom: no entry; a random peer was chosen.
	ReasonRandom
	// ReasonSelfOrigin: the learned location is this proxy itself but the
	// object is not cached here, so the query goes to the origin (§III.3.2).
	ReasonSelfOrigin
	// ReasonLoop: loop detected (the request ID was already pending).
	ReasonLoop
	// ReasonMaxHops: the forwarding bound was reached.
	ReasonMaxHops
	// ReasonHashed: the hashing baseline's assigned-proxy forward.
	ReasonHashed
	// ReasonFailover: the learned location (or every peer) is marked down
	// by the health subsystem, so the forward goes to the origin instead
	// (HTTP farm fault tolerance).
	ReasonFailover
)

// ForwardReasonString names a KindForward Arg value.
func ForwardReasonString(arg int64) string {
	switch arg {
	case ReasonLearned:
		return "learned"
	case ReasonRandom:
		return "random"
	case ReasonSelfOrigin:
		return "self-origin"
	case ReasonLoop:
		return "loop"
	case ReasonMaxHops:
		return "max-hops"
	case ReasonHashed:
		return "hashed"
	case ReasonFailover:
		return "failover"
	default:
		return fmt.Sprintf("reason(%d)", arg)
	}
}

// Drop causes (Event.Arg on KindDrop events).
const (
	// DropFilter: a SetDropFilter hook discarded the send.
	DropFilter int64 = iota
	// DropLoss: the fault plan's message loss hit the transfer.
	DropLoss
	// DropCrash: the destination was crashed at delivery time.
	DropCrash
)

// DropCauseString names a KindDrop Arg value.
func DropCauseString(arg int64) string {
	switch arg {
	case DropFilter:
		return "filter"
	case DropLoss:
		return "loss"
	case DropCrash:
		return "crash"
	default:
		return fmt.Sprintf("cause(%d)", arg)
	}
}

// Outcome encoding for KindBackward/KindHit events: the mapping-table
// transition Update performed, packed into Arg. From and To are
// core.Kind values (0 none, 1 caching, 2 multiple, 3 single); obs avoids
// importing core so the dependency stays ids-only.
const (
	outcomeToShift   = 0
	outcomeFromShift = 4
	outcomeFlagShift = 8

	// OutcomeCacheEvicted marks that the update evicted a caching-table
	// entry; OutcomeMultipleEvicted a multiple-table entry; OutcomeDropped
	// that a single-table candidate was dropped on the floor.
	OutcomeCacheEvicted    int64 = 1 << (outcomeFlagShift + 0)
	OutcomeMultipleEvicted int64 = 1 << (outcomeFlagShift + 1)
	OutcomeDropped         int64 = 1 << (outcomeFlagShift + 2)
)

// EncodeOutcome packs an Update outcome into an Event.Arg.
func EncodeOutcome(from, to int, cacheEvicted, multipleEvicted, dropped bool) int64 {
	arg := int64(to)<<outcomeToShift | int64(from)<<outcomeFromShift
	if cacheEvicted {
		arg |= OutcomeCacheEvicted
	}
	if multipleEvicted {
		arg |= OutcomeMultipleEvicted
	}
	if dropped {
		arg |= OutcomeDropped
	}
	return arg
}

// DecodeOutcome unpacks an EncodeOutcome Arg.
func DecodeOutcome(arg int64) (from, to int, cacheEvicted, multipleEvicted, dropped bool) {
	to = int(arg>>outcomeToShift) & 0xF
	from = int(arg>>outcomeFromShift) & 0xF
	return from, to, arg&OutcomeCacheEvicted != 0, arg&OutcomeMultipleEvicted != 0, arg&OutcomeDropped != 0
}

// tableKindNames mirrors core.Kind's String values.
var tableKindNames = [...]string{"none", "caching", "multiple", "single"}

// TableKindString names a table kind from a decoded outcome.
func TableKindString(k int) string {
	if k >= 0 && k < len(tableKindNames) {
		return tableKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", k)
}

// OutcomeString renders a packed outcome compactly, e.g. "single→caching"
// or "multiple→multiple (cache-evict)".
func OutcomeString(arg int64) string {
	from, to, ce, me, dr := DecodeOutcome(arg)
	s := TableKindString(from) + "→" + TableKindString(to)
	var flags string
	if ce {
		flags += " cache-evict"
	}
	if me {
		flags += " multiple-evict"
	}
	if dr {
		flags += " dropped"
	}
	if flags != "" {
		s += " (" + flags[1:] + ")"
	}
	return s
}

// Event is one traced protocol step. Seq is the tracer-assigned emission
// order — the authoritative ordering on the single-threaded engines, where
// it equals delivery order. At is virtual time in ticks when the runtime
// has a clock (the virtual-time engine; wall-clock microseconds on the HTTP
// runtime), 0 otherwise.
type Event struct {
	Seq  uint64
	At   int64
	Kind Kind
	// Node is the node the step happened at.
	Node ids.NodeID
	// Req identifies the attempt (0 for events without one, e.g.
	// invalidations).
	Req ids.RequestID
	Obj ids.ObjectID
	// To is the destination of forwards/backwards/drops; None otherwise.
	To ids.NodeID
	// Loc is the object location the step established (hit: the proxy
	// itself; backward: the location learned into the tables; deliver:
	// the resolver); None otherwise.
	Loc ids.NodeID
	// Prev links a retry to the attempt it supersedes.
	Prev ids.RequestID
	// Hops is the message's hop counter at the step.
	Hops int32
	// Arg is kind-specific (forward reason, drop cause, packed outcome,
	// FromOrigin flag, retry ordinal, expired pass count).
	Arg int64
}

// Ev returns an Event of kind k at node with both node-reference fields
// cleared. The NodeID zero value is Proxy[0], so a struct-literal Event
// that forgets To or Loc silently references a real proxy; Ev makes the
// unset state explicit once.
func Ev(k Kind, node ids.NodeID) Event {
	return Event{Kind: k, Node: node, To: ids.None, Loc: ids.None}
}

// Tracer accumulates events. A nil *Tracer is the disabled tracer: Enabled
// returns false, so guarded call sites skip event construction entirely.
// Emission is mutex-protected, making one tracer safe to share across the
// HTTP runtime's concurrent handlers; on the single-threaded engines the
// uncontended lock is a few nanoseconds per event.
type Tracer struct {
	mu   sync.Mutex
	mask uint64
	seq  uint64
	ev   []Event
	// wall, when set, stamps events without an At with microseconds since
	// the tracer's creation (the HTTP runtime's clock).
	wall  func() int64
	start time.Time
}

// New returns a tracer recording the given kinds, or every kind when none
// are named.
func New(kinds ...Kind) *Tracer {
	t := &Tracer{}
	if len(kinds) == 0 {
		t.mask = 1<<uint(numKinds) - 1
	} else {
		for _, k := range kinds {
			t.mask |= 1 << uint(k)
		}
	}
	return t
}

// UseWallClock makes Emit stamp events that carry no At with wall-clock
// microseconds since this call — the HTTP runtime's notion of time.
func (t *Tracer) UseWallClock() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.start = time.Now()
	t.wall = func() int64 { return time.Since(t.start).Microseconds() }
}

// Enabled reports whether kind k is recorded. Safe on a nil tracer, where
// it is the disabled fast path.
func (t *Tracer) Enabled(k Kind) bool {
	return t != nil && t.mask&(1<<uint(k)) != 0
}

// Emit records e, assigning its Seq. Events of kinds the tracer does not
// record are discarded (callers normally guard with Enabled first).
func (t *Tracer) Emit(e Event) {
	if !t.Enabled(e.Kind) {
		return
	}
	t.mu.Lock()
	t.seq++
	e.Seq = t.seq
	if e.At == 0 && t.wall != nil {
		e.At = t.wall()
	}
	t.ev = append(t.ev, e)
	t.mu.Unlock()
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ev)
}

// Events returns a snapshot copy of the recorded events in emission order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.ev))
	copy(out, t.ev)
	return out
}

// Reset drops all recorded events (the sequence counter keeps running, so
// Seq values stay unique across resets).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ev = nil
	t.mu.Unlock()
}

// Time returns the ordering value tools should use for an event: At when
// the runtime had a clock, else Seq (sequential engine traces).
func (e Event) Time() int64 {
	if e.At != 0 {
		return e.At
	}
	return int64(e.Seq)
}
