// Package metrics collects the evaluation measurements the paper reports:
// hit rate (cumulative and as a moving average over the last 5000 requests,
// §V.2.1), hops per request (§V.2.2), and wall-clock processing time
// (§V.3.3), together with time-series samples for figure regeneration.
package metrics

import (
	"time"

	"github.com/adc-sim/adc/internal/stats"
)

// DefaultWindow is the moving-average window the paper uses for hit-rate
// curves: "the average hit rate as a moving average over the last 5000
// requests" (§V.2.1).
const DefaultWindow = 5000

// Point is one time-series sample, keyed by the number of completed
// requests. HitRate and Hops are window averages; CumHitRate and CumHops are
// running totals since the start of the run.
type Point struct {
	Requests   uint64
	HitRate    float64
	CumHitRate float64
	Hops       float64
	CumHops    float64
}

// Collector accumulates per-request outcomes. It is not safe for concurrent
// use; in concurrent runtimes only the single client driver observes
// completions, so no locking is needed.
type Collector struct {
	window     *stats.MovingAverage
	hopsWindow *stats.MovingAverage

	requests uint64
	hits     uint64
	hopsSum  uint64
	hopsHist *stats.Histogram
	pathLens *stats.Online

	sampleEvery uint64
	expected    uint64
	series      []Point

	// response accumulates per-request response times in virtual ticks
	// when the run executes on the virtual-time engine.
	response stats.Online

	// respHist optionally buckets response times so tail quantiles (p99)
	// can be read; nil unless WithResponseHistogram was given.
	respHist *stats.Histogram

	// Recovery-protocol counters (fault-injected runs only; all zero in
	// the paper-faithful lossless mode).
	retries      uint64
	timeouts     uint64
	abandoned    uint64
	staleReplies uint64

	started time.Time
	elapsed time.Duration
}

// Option configures a Collector.
type Option func(*Collector)

// WithWindow overrides the moving-average window size (default 5000).
func WithWindow(size int) Option {
	return func(c *Collector) {
		c.window = stats.NewMovingAverage(size)
		c.hopsWindow = stats.NewMovingAverage(size)
	}
}

// WithSampleEvery records one series Point per n completed requests.
// n == 0 disables series collection (summary only).
func WithSampleEvery(n uint64) Option {
	return func(c *Collector) { c.sampleEvery = n }
}

// WithExpectedRequests declares how many requests the run will record, so
// the series slice is allocated once at its final capacity instead of
// growing append by append on the hot path.
func WithExpectedRequests(n uint64) Option {
	return func(c *Collector) { c.expected = n }
}

// WithResponseHistogram buckets virtual-time response samples into buckets
// bins of the given tick width, enabling tail quantiles (Summary.
// P99Response). Off by default: per-client histograms are not free at a
// million clients.
func WithResponseHistogram(buckets, width int) Option {
	return func(c *Collector) { c.respHist = stats.NewHistogram(buckets, width) }
}

// NewCollector returns a ready Collector. Options apply before the default
// windows are allocated, so a WithWindow override pays for exactly one pair
// of rings — with a million per-client collectors in a sharded run, eagerly
// allocating the 5000-slot defaults first would burn ~80 KB of garbage per
// client before the option even ran.
func NewCollector(opts ...Option) *Collector {
	c := &Collector{
		hopsHist:    stats.NewHistogram(32, 1),
		pathLens:    &stats.Online{},
		sampleEvery: DefaultWindow,
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.window == nil {
		c.window = stats.NewMovingAverage(DefaultWindow)
		c.hopsWindow = stats.NewMovingAverage(DefaultWindow)
	}
	if c.expected > 0 && c.sampleEvery > 0 {
		c.series = make([]Point, 0, c.expected/c.sampleEvery)
	}
	return c
}

// Start marks the beginning of the measured run.
func (c *Collector) Start() { c.started = time.Now() }

// Stop records the total elapsed wall-clock time.
func (c *Collector) Stop() { c.elapsed = time.Since(c.started) }

// Record accounts one completed request: whether a proxy cache served it,
// how many message transfers it took, and how many proxies the forwarding
// path visited.
func (c *Collector) Record(hit bool, hops, pathLen int) {
	c.requests++
	h := 0.0
	if hit {
		c.hits++
		h = 1.0
	}
	c.window.Add(h)
	c.hopsWindow.Add(float64(hops))
	c.hopsSum += uint64(hops)
	c.hopsHist.Add(hops)
	c.pathLens.Add(float64(pathLen))

	if c.sampleEvery > 0 && c.requests%c.sampleEvery == 0 {
		c.series = append(c.series, Point{
			Requests:   c.requests,
			HitRate:    c.window.Value(),
			CumHitRate: c.CumHitRate(),
			Hops:       c.hopsWindow.Value(),
			CumHops:    c.CumHops(),
		})
	}
}

// RecordResponse accounts one request's virtual response time (the
// virtual-time engine's clock delta between injection and reply).
func (c *Collector) RecordResponse(vticks int64) {
	c.response.Add(float64(vticks))
	if c.respHist != nil {
		c.respHist.Add(int(vticks))
	}
}

// Response exposes the response-time accumulator (mean/min/max in virtual
// ticks; empty unless the run used the virtual-time engine).
func (c *Collector) Response() *stats.Online { return &c.response }

// ResponseHistogram returns the bucketed response-time distribution, or nil
// when WithResponseHistogram was not given.
func (c *Collector) ResponseHistogram() *stats.Histogram { return c.respHist }

// RecordTimeout accounts one request attempt whose reply did not arrive
// within the recovery timeout (whether it is then retried or abandoned).
func (c *Collector) RecordTimeout() { c.timeouts++ }

// RecordRetry accounts one retransmission of a timed-out request.
func (c *Collector) RecordRetry() { c.retries++ }

// RecordAbandoned accounts one request given up on after exhausting its
// retry budget — a permanently stranded chain from the client's view.
func (c *Collector) RecordAbandoned() { c.abandoned++ }

// RecordStaleReply accounts a reply that arrived for a request the client
// no longer has outstanding (a duplicate from a retransmitted chain).
func (c *Collector) RecordStaleReply() { c.staleReplies++ }

// Timeouts returns the number of request-attempt timeouts.
func (c *Collector) Timeouts() uint64 { return c.timeouts }

// Retries returns the number of retransmissions.
func (c *Collector) Retries() uint64 { return c.retries }

// Abandoned returns the number of requests given up on.
func (c *Collector) Abandoned() uint64 { return c.abandoned }

// StaleReplies returns the number of duplicate/late replies discarded.
func (c *Collector) StaleReplies() uint64 { return c.staleReplies }

// Requests returns the number of completed requests.
func (c *Collector) Requests() uint64 { return c.requests }

// Hits returns the number of requests served by a proxy cache.
func (c *Collector) Hits() uint64 { return c.hits }

// CumHitRate returns hits/requests over the whole run.
func (c *Collector) CumHitRate() float64 {
	if c.requests == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.requests)
}

// CumHops returns the mean hops per request over the whole run.
func (c *Collector) CumHops() float64 {
	if c.requests == 0 {
		return 0
	}
	return float64(c.hopsSum) / float64(c.requests)
}

// WindowHitRate returns the current moving-average hit rate.
func (c *Collector) WindowHitRate() float64 { return c.window.Value() }

// WindowHops returns the current moving-average hops per request.
func (c *Collector) WindowHops() float64 { return c.hopsWindow.Value() }

// Elapsed returns the wall-clock duration between Start and Stop.
func (c *Collector) Elapsed() time.Duration { return c.elapsed }

// Series returns the collected time-series samples. The returned slice is
// owned by the collector and must not be mutated.
func (c *Collector) Series() []Point { return c.series }

// HopsHistogram returns the distribution of per-request hop counts.
func (c *Collector) HopsHistogram() *stats.Histogram { return c.hopsHist }

// MeanPathLen returns the mean number of proxies on the forwarding path.
func (c *Collector) MeanPathLen() float64 { return c.pathLens.Mean() }

// Summary is an immutable snapshot of a finished run, suitable for tables.
type Summary struct {
	Requests uint64
	Hits     uint64
	HitRate  float64
	Hops     float64
	PathLen  float64
	Elapsed  time.Duration
	// MeanResponse/MaxResponse are virtual-time response times in
	// ticks; zero unless the run used the virtual-time engine.
	MeanResponse float64
	MaxResponse  float64
	// P99Response is the 99th-percentile response time in ticks; zero
	// unless the run enabled the response histogram.
	P99Response float64
	// Recovery-protocol counters; all zero in lossless runs.
	Timeouts     uint64
	Retries      uint64
	Abandoned    uint64
	StaleReplies uint64
}

// Summary snapshots the collector.
func (c *Collector) Summary() Summary {
	p99 := 0.0
	if c.respHist != nil {
		p99 = c.respHist.Quantile(0.99)
	}
	return Summary{
		P99Response: p99,
		Requests:     c.requests,
		Hits:         c.hits,
		HitRate:      c.CumHitRate(),
		Hops:         c.CumHops(),
		PathLen:      c.MeanPathLen(),
		Elapsed:      c.elapsed,
		MeanResponse: c.response.Mean(),
		MaxResponse:  c.response.Max(),
		Timeouts:     c.timeouts,
		Retries:      c.retries,
		Abandoned:    c.abandoned,
		StaleReplies: c.staleReplies,
	}
}
