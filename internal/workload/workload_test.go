package workload

import (
	"math"
	"math/rand"
	"testing"

	"github.com/adc-sim/adc/internal/ids"
)

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 0.8); err == nil {
		t.Error("NewZipf(0, …) must fail")
	}
	if _, err := NewZipf(10, 0); err == nil {
		t.Error("NewZipf(…, 0) must fail")
	}
	if _, err := NewZipf(10, -1); err == nil {
		t.Error("NewZipf(…, -1) must fail")
	}
}

func TestZipfRankRange(t *testing.T) {
	z, err := NewZipf(100, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		r := z.Rank(rng)
		if r < 0 || r >= 100 {
			t.Fatalf("rank %d out of [0,100)", r)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// Rank 0 must be drawn far more often than rank N-1, and empirical
	// frequencies must roughly match the analytic CDF.
	const n, draws = 1000, 200000
	z, err := NewZipf(n, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Rank(rng)]++
	}
	if counts[0] < counts[n-1]*10 {
		t.Errorf("rank 0 drawn %d times vs rank %d's %d — not skewed enough",
			counts[0], n-1, counts[n-1])
	}
	// Empirical head mass of the top 10% vs analytic.
	head := 0
	for i := 0; i < n/10; i++ {
		head += counts[i]
	}
	got := float64(head) / draws
	want := z.HeadMass(n / 10)
	if math.Abs(got-want) > 0.02 {
		t.Errorf("top-10%% mass = %.3f, analytic %.3f", got, want)
	}
}

func TestZipfHeadMass(t *testing.T) {
	z, err := NewZipf(100, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if got := z.HeadMass(0); got != 0 {
		t.Errorf("HeadMass(0) = %v, want 0", got)
	}
	if got := z.HeadMass(100); got != 1 {
		t.Errorf("HeadMass(100) = %v, want 1", got)
	}
	if got := z.HeadMass(500); got != 1 {
		t.Errorf("HeadMass(500) = %v, want 1", got)
	}
	if m1, m2 := z.HeadMass(10), z.HeadMass(50); m1 >= m2 {
		t.Errorf("HeadMass must be increasing: %v >= %v", m1, m2)
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"defaults ok", Config{TotalRequests: 1000}, false},
		{"paper", PaperConfig(), false},
		{"zero total", Config{}, true},
		{"bad fill fraction", Config{TotalRequests: 100, FillFraction: 1.5}, true},
		{"bad alpha", Config{TotalRequests: 100, Alpha: -2}, true},
		{"bad repeat prob", Config{TotalRequests: 100, FillRepeatProb: 1.0}, true},
		{"bad population", Config{TotalRequests: 100, PopulationFraction: 2}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.cfg.Validate(); (err != nil) != tc.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestGeneratorEmitsExactlyTotal(t *testing.T) {
	g, err := New(DefaultConfig(10000))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := g.Next(); !ok {
			break
		}
		n++
	}
	if n != 10000 {
		t.Errorf("emitted %d, want 10000", n)
	}
	if _, ok := g.Next(); ok {
		t.Error("Next after exhaustion must report !ok")
	}
}

func TestGeneratorDeterministicBySeed(t *testing.T) {
	mk := func(seed int64) []ids.ObjectID {
		cfg := DefaultConfig(5000)
		cfg.Seed = seed
		g, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var out []ids.ObjectID
		for {
			obj, ok := g.Next()
			if !ok {
				return out
			}
			out = append(out, obj)
		}
	}
	a, b := mk(7), mk(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := mk(8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical streams")
	}
}

func TestGeneratorPhaseBoundaries(t *testing.T) {
	g, err := New(DefaultConfig(4000))
	if err != nil {
		t.Fatal(err)
	}
	fillEnd, phase2End := g.Boundaries()
	if fillEnd != 1000 {
		t.Errorf("fillEnd = %d, want 1000 (25%%)", fillEnd)
	}
	if phase2End != 2500 {
		t.Errorf("phase2End = %d, want 2500", phase2End)
	}
	if g.PhaseAt(0) != PhaseFill || g.PhaseAt(999) != PhaseFill {
		t.Error("fill phase misclassified")
	}
	if g.PhaseAt(1000) != PhaseRequestI || g.PhaseAt(2499) != PhaseRequestI {
		t.Error("phase 2 misclassified")
	}
	if g.PhaseAt(2500) != PhaseRequestII || g.PhaseAt(3999) != PhaseRequestII {
		t.Error("phase 3 misclassified")
	}
}

func TestGeneratorFillPhaseMostlyUnique(t *testing.T) {
	// §V.1.6: "a simple fill phase with almost no request repetitions".
	g, err := New(DefaultConfig(40000))
	if err != nil {
		t.Fatal(err)
	}
	fillEnd, _ := g.Boundaries()
	seen := make(map[ids.ObjectID]bool, fillEnd)
	repeats := 0
	for i := 0; i < fillEnd; i++ {
		obj, ok := g.Next()
		if !ok {
			t.Fatal("stream ended during fill")
		}
		if seen[obj] {
			repeats++
		}
		seen[obj] = true
	}
	if frac := float64(repeats) / float64(fillEnd); frac > 0.08 {
		t.Errorf("fill repeat fraction = %.3f, want <= 0.08", frac)
	}
	if len(seen) < fillEnd*9/10 {
		t.Errorf("fill introduced %d distinct objects of %d requests", len(seen), fillEnd)
	}
}

func TestGeneratorPhase3ReplaysPhase2(t *testing.T) {
	// §V.1.6: phase 2 "repeats itself in Phase 3".
	g, err := New(DefaultConfig(4000))
	if err != nil {
		t.Fatal(err)
	}
	fillEnd, phase2End := g.Boundaries()
	all := make([]ids.ObjectID, 0, 4000)
	for {
		obj, ok := g.Next()
		if !ok {
			break
		}
		all = append(all, obj)
	}
	phase2 := all[fillEnd:phase2End]
	phase3 := all[phase2End:]
	if len(phase3) == 0 {
		t.Fatal("empty phase 3")
	}
	for i := range phase3 {
		if phase3[i] != phase2[i] {
			t.Fatalf("phase 3 diverges from phase 2 at offset %d: %v vs %v",
				i, phase3[i], phase2[i])
		}
	}
}

func TestGeneratorRequestPhaseDrawsFromPopulation(t *testing.T) {
	g, err := New(DefaultConfig(4000))
	if err != nil {
		t.Fatal(err)
	}
	fillEnd, _ := g.Boundaries()
	pop := ids.ObjectID(g.Population())
	oneTimers := 0
	total := 0
	for i := 0; i < 4000; i++ {
		obj, ok := g.Next()
		if !ok {
			break
		}
		if i < fillEnd {
			continue
		}
		total++
		if obj >= ids.ObjectID(oneTimerBase) {
			oneTimers++
			continue
		}
		if obj < 1 || obj > pop {
			t.Fatalf("request-phase object %v outside population [1,%d]", obj, pop)
		}
	}
	// Default OneTimerProb is 0.3; allow generous slack on 3000 draws.
	frac := float64(oneTimers) / float64(total)
	if frac < 0.2 || frac > 0.4 {
		t.Errorf("one-timer fraction = %.3f, want ≈0.3", frac)
	}
}

func TestGeneratorOneTimersDisabled(t *testing.T) {
	cfg := DefaultConfig(2000)
	cfg.OneTimerProb = -1 // negative selects exactly zero
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		obj, ok := g.Next()
		if !ok {
			break
		}
		if obj >= ids.ObjectID(oneTimerBase) {
			t.Fatalf("request %d is a one-timer despite OneTimerProb<0", i)
		}
	}
}

func TestGeneratorOneTimersUniqueWithinPhase(t *testing.T) {
	g, err := New(DefaultConfig(4000))
	if err != nil {
		t.Fatal(err)
	}
	fillEnd, phase2End := g.Boundaries()
	seen := make(map[ids.ObjectID]bool)
	for i := 0; i < phase2End; i++ {
		obj, ok := g.Next()
		if !ok {
			t.Fatal("stream ended early")
		}
		if i < fillEnd || obj < ids.ObjectID(oneTimerBase) {
			continue
		}
		if seen[obj] {
			t.Fatalf("one-timer %v repeated within phase 2", obj)
		}
		seen[obj] = true
	}
	if len(seen) == 0 {
		t.Fatal("no one-timers generated in phase 2")
	}
}

func TestGeneratorReset(t *testing.T) {
	g, err := New(DefaultConfig(2000))
	if err != nil {
		t.Fatal(err)
	}
	first := make([]ids.ObjectID, 0, 2000)
	for {
		obj, ok := g.Next()
		if !ok {
			break
		}
		first = append(first, obj)
	}
	g.Reset()
	for i := 0; ; i++ {
		obj, ok := g.Next()
		if !ok {
			if i != len(first) {
				t.Fatalf("replay length %d, want %d", i, len(first))
			}
			break
		}
		if obj != first[i] {
			t.Fatalf("reset replay diverged at %d", i)
		}
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseFill.String() != "fill" || PhaseRequestI.String() != "request-I" ||
		PhaseRequestII.String() != "request-II" {
		t.Error("phase names wrong")
	}
	if Phase(9).String() != "Phase(9)" {
		t.Error("unknown phase name wrong")
	}
}
