package sim

import (
	"fmt"
	"math/rand"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/metrics"
	"github.com/adc-sim/adc/internal/msg"
	"github.com/adc-sim/adc/internal/workload"
)

// EntryPolicy selects which proxy a client sends each request to.
type EntryPolicy int

// Entry policies.
const (
	// EntryRandom picks a uniformly random proxy per request (default;
	// models independent clients scattered over the network).
	EntryRandom EntryPolicy = iota
	// EntryRoundRobin cycles through the proxies.
	EntryRoundRobin
	// EntryFixed always uses the first proxy — the worst case for
	// hashing schemes and a stress test for ADC's backwarding.
	EntryFixed
)

// String implements fmt.Stringer.
func (p EntryPolicy) String() string {
	switch p {
	case EntryRandom:
		return "random"
	case EntryRoundRobin:
		return "round-robin"
	case EntryFixed:
		return "fixed"
	default:
		return fmt.Sprintf("EntryPolicy(%d)", int(p))
	}
}

// Client is the closed-loop request driver: it keeps exactly one request
// outstanding, records each completion, and injects the next request when
// the reply arrives. Closed-loop injection is what makes concurrent and
// distributed runs deliver bit-identical metrics to the sequential engine
// (DESIGN.md §3).
type Client struct {
	id        ids.NodeID
	src       workload.Source
	proxies   []ids.NodeID
	policy    EntryPolicy
	rng       *rand.Rand
	collector *metrics.Collector
	maxHops   int

	counter uint64
	rr      int
	done    bool
	// sentAt is the virtual send time of the outstanding request, used
	// to measure response time on virtual-time engines.
	sentAt int64

	// onDone, when set, fires once after the last reply is recorded;
	// concurrent runtimes use it to know when to shut down.
	onDone func()
}

var (
	_ Node    = (*Client)(nil)
	_ Starter = (*Client)(nil)
)

// ClientConfig assembles a Client.
type ClientConfig struct {
	// Index distinguishes multiple clients; the NodeID is ids.Client(Index).
	Index int
	// Source supplies the request stream.
	Source workload.Source
	// Proxies lists the entry points.
	Proxies []ids.NodeID
	// Policy selects the entry proxy per request (default EntryRandom).
	Policy EntryPolicy
	// Seed drives the EntryRandom choice.
	Seed int64
	// Collector receives one Record per completed request.
	Collector *metrics.Collector
	// MaxHops is copied onto every request (0 = unbounded).
	MaxHops int
	// OnDone fires after the final reply (optional).
	OnDone func()
}

// NewClient builds a client driver.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Source == nil {
		return nil, fmt.Errorf("sim: client %d needs a workload source", cfg.Index)
	}
	if len(cfg.Proxies) == 0 {
		return nil, fmt.Errorf("sim: client %d needs at least one proxy", cfg.Index)
	}
	if cfg.Collector == nil {
		cfg.Collector = metrics.NewCollector(metrics.WithSampleEvery(0))
	}
	return &Client{
		id:        ids.Client(cfg.Index),
		src:       cfg.Source,
		proxies:   cfg.Proxies,
		policy:    cfg.Policy,
		rng:       rand.New(rand.NewSource(cfg.Seed ^ 0x5DEECE66D)),
		collector: cfg.Collector,
		maxHops:   cfg.MaxHops,
		onDone:    cfg.OnDone,
	}, nil
}

// ID implements Node.
func (c *Client) ID() ids.NodeID { return c.id }

// SetOnDone installs the completion callback; it must be called before the
// run starts. Concurrent runtimes use it to learn when traffic has drained.
func (c *Client) SetOnDone(fn func()) { c.onDone = fn }

// AddProxy adds a newly joined proxy to the entry-point set (infrastructure
// growth). Safe only between requests on the sequential engine.
func (c *Client) AddProxy(id ids.NodeID) {
	for _, p := range c.proxies {
		if p == id {
			return
		}
	}
	c.proxies = append(c.proxies, id)
}

// Collector returns the metrics sink.
func (c *Client) Collector() *metrics.Collector { return c.collector }

// Done reports whether the trace is exhausted and the last reply recorded.
func (c *Client) Done() bool { return c.done }

// Start implements Starter: it injects the first request.
func (c *Client) Start(ctx Context) {
	c.sendNext(ctx)
}

// Handle implements Node: every delivered message must be the reply to the
// single outstanding request.
func (c *Client) Handle(ctx Context, m msg.Message) {
	rep, ok := m.(*msg.Reply)
	if !ok {
		return // clients never receive requests
	}
	c.collector.Record(!rep.FromOrigin, rep.Hops, rep.PathLen)
	if clk, ok := ctx.(Clock); ok {
		c.collector.RecordResponse(clk.VNow() - c.sentAt)
	}
	Finish(ctx, rep) // terminal delivery: the reply recycles
	c.sendNext(ctx)
}

func (c *Client) sendNext(ctx Context) {
	obj, ok := c.src.Next()
	if !ok {
		if !c.done {
			c.done = true
			if c.onDone != nil {
				c.onDone()
			}
		}
		return
	}
	c.counter++
	if clk, ok := ctx.(Clock); ok {
		c.sentAt = clk.VNow()
	}
	req := NewRequest(ctx)
	req.To = c.pickEntry()
	req.ID = ids.NewRequestID(c.id.ClientIndex(), c.counter)
	req.Object = obj
	req.Client = c.id
	req.Sender = c.id
	req.MaxHops = c.maxHops
	ctx.Send(req)
}

func (c *Client) pickEntry() ids.NodeID {
	switch c.policy {
	case EntryRoundRobin:
		p := c.proxies[c.rr%len(c.proxies)]
		c.rr++
		return p
	case EntryFixed:
		return c.proxies[0]
	default:
		return c.proxies[c.rng.Intn(len(c.proxies))]
	}
}
