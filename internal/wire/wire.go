// Package wire defines the binary encoding of the two message kinds for
// transports that cross process or host boundaries (internal/transport).
// The format is hand-rolled little-endian with varints for the variable
// parts — compact, allocation-light, and with no reflection in the hot
// path, which matters because the distributed runtime serializes every
// single hop.
//
// Frame layout (after the transport's length prefix):
//
//	byte 0:   message kind (kindRequest | kindReply)
//	payload:  fixed fields in order, then the path as a varint count
//	          followed by varint-encoded node IDs (zig-zag for the
//	          signed values). Replies end with the replica set in the
//	          same count-prefixed form (count 0 in stock ADC).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/msg"
)

// Message kind tags.
const (
	kindRequest byte = 1
	kindReply   byte = 2
)

// MaxFrameSize bounds a single encoded message; longer frames indicate
// corruption (a legitimate frame is a few dozen bytes plus the path).
const MaxFrameSize = 1 << 20

// Errors returned by the decoder.
var (
	// ErrUnknownKind marks a frame whose kind tag is not recognised.
	ErrUnknownKind = errors.New("wire: unknown message kind")
	// ErrFrameTooLarge marks a length prefix beyond MaxFrameSize.
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	// ErrTruncated marks a frame that ended mid-field.
	ErrTruncated = errors.New("wire: truncated frame")
)

// appendUvarint/appendVarint wrap binary.Append* for readability.
func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendVarint(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }

// Encode serializes m, appending to buf (which may be nil) and returning
// the extended slice. The result does not include a length prefix; use
// WriteMessage for stream transport.
func Encode(buf []byte, m msg.Message) ([]byte, error) {
	switch t := m.(type) {
	case *msg.Request:
		buf = append(buf, kindRequest)
		buf = appendVarint(buf, int64(t.To))
		buf = appendUvarint(buf, uint64(t.ID))
		buf = appendUvarint(buf, uint64(t.Object))
		buf = appendVarint(buf, int64(t.Client))
		buf = appendVarint(buf, int64(t.Sender))
		buf = appendUvarint(buf, uint64(t.Hops))
		buf = appendUvarint(buf, uint64(t.MaxHops))
		buf = appendUvarint(buf, uint64(len(t.Path)))
		for _, p := range t.Path {
			buf = appendVarint(buf, int64(p))
		}
		return buf, nil
	case *msg.Reply:
		buf = append(buf, kindReply)
		buf = appendVarint(buf, int64(t.To))
		buf = appendUvarint(buf, uint64(t.ID))
		buf = appendUvarint(buf, uint64(t.Object))
		buf = appendVarint(buf, int64(t.Client))
		buf = appendVarint(buf, int64(t.Resolver))
		buf = append(buf, encodeBools(t.Cached, t.FromOrigin, t.Replicate))
		buf = appendUvarint(buf, uint64(t.Hops))
		buf = appendUvarint(buf, uint64(t.PathLen))
		buf = appendUvarint(buf, uint64(len(t.Path)))
		for _, p := range t.Path {
			buf = appendVarint(buf, int64(p))
		}
		buf = appendUvarint(buf, uint64(len(t.Replicas)))
		for _, p := range t.Replicas {
			buf = appendVarint(buf, int64(p))
		}
		buf = appendVarint(buf, t.AvgHint)
		return buf, nil
	default:
		return nil, fmt.Errorf("wire: cannot encode %T", m)
	}
}

func encodeBools(cached, fromOrigin, replicate bool) byte {
	var b byte
	if cached {
		b |= 1
	}
	if fromOrigin {
		b |= 2
	}
	if replicate {
		b |= 4
	}
	return b
}

// reader tracks a decode position over a frame.
type reader struct {
	buf []byte
	pos int
	err error
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.err = ErrTruncated
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		r.err = ErrTruncated
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.buf) {
		r.err = ErrTruncated
		return 0
	}
	b := r.buf[r.pos]
	r.pos++
	return b
}

func (r *reader) path() []ids.NodeID {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.pos) {
		// Each path element takes at least one byte; a count beyond
		// the remaining bytes is corruption, not a big path.
		r.err = ErrTruncated
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]ids.NodeID, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, ids.NodeID(r.varint()))
	}
	return out
}

// Decode parses one frame produced by Encode.
func Decode(frame []byte) (msg.Message, error) {
	if len(frame) == 0 {
		return nil, ErrTruncated
	}
	r := &reader{buf: frame, pos: 1}
	switch frame[0] {
	case kindRequest:
		m := &msg.Request{
			To:     ids.NodeID(r.varint()),
			ID:     ids.RequestID(r.uvarint()),
			Object: ids.ObjectID(r.uvarint()),
			Client: ids.NodeID(r.varint()),
			Sender: ids.NodeID(r.varint()),
		}
		m.Hops = int(r.uvarint())
		m.MaxHops = int(r.uvarint())
		m.Path = r.path()
		if r.err != nil {
			return nil, r.err
		}
		return m, nil
	case kindReply:
		m := &msg.Reply{
			To:       ids.NodeID(r.varint()),
			ID:       ids.RequestID(r.uvarint()),
			Object:   ids.ObjectID(r.uvarint()),
			Client:   ids.NodeID(r.varint()),
			Resolver: ids.NodeID(r.varint()),
		}
		flags := r.byte()
		m.Cached = flags&1 != 0
		m.FromOrigin = flags&2 != 0
		m.Replicate = flags&4 != 0
		m.Hops = int(r.uvarint())
		m.PathLen = int(r.uvarint())
		m.Path = r.path()
		m.Replicas = r.path()
		m.AvgHint = r.varint()
		if r.err != nil {
			return nil, r.err
		}
		return m, nil
	default:
		return nil, fmt.Errorf("%w: 0x%02x", ErrUnknownKind, frame[0])
	}
}

// AppendFrame appends m as one length-prefixed frame to buf (which may be
// nil) and returns the extended slice. It is the allocation-friendly
// building block for transports that batch several frames into one write:
// append repeatedly, write once.
func AppendFrame(buf []byte, m msg.Message) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf, err := Encode(buf, m)
	if err != nil {
		return nil, err
	}
	binary.LittleEndian.PutUint32(buf[start:start+4], uint32(len(buf)-start-4))
	return buf, nil
}

// WriteMessage frames m with a uint32 length prefix and writes it to w.
func WriteMessage(w io.Writer, m msg.Message) error {
	payload, err := AppendFrame(make([]byte, 0, 64), m)
	if err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	return nil
}

// ReadMessage reads one length-prefixed frame from r and decodes it.
func ReadMessage(r io.Reader) (msg.Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(r, frame); err != nil {
		return nil, fmt.Errorf("wire: read frame body: %w", err)
	}
	return Decode(frame)
}
