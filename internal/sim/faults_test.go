package sim

import (
	"testing"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/msg"
	"github.com/adc-sim/adc/internal/trace"
)

// These tests probe the paper's load-bearing transport assumption:
// "we don't expect the loss of messages and ... always either one of the
// proxy objects or the actual origin server will finally resolve the
// request" (§III.1). The protocol has no timeouts or retransmissions, so
// a single lost message strands its request chain permanently — the
// fault-injection engine makes that concrete and measurable.

func TestLossStrandsClosedLoop(t *testing.T) {
	eng := NewVEngine(LatencyModel{ClientProxy: 1})
	echo := &delayProbe{id: 0, reply: true}
	if err := eng.Register(echo); err != nil {
		t.Fatal(err)
	}
	objs := make([]ids.ObjectID, 10)
	cl, err := NewClient(ClientConfig{
		Source:  trace.NewSliceSource(objs),
		Proxies: []ids.NodeID{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(cl); err != nil {
		t.Fatal(err)
	}
	// Drop the 6th network transfer (the 3rd request's request leg).
	n := 0
	eng.SetDropFilter(func(m msg.Message) bool {
		n++
		return n == 6
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// The engine drains (no livelock), but the closed loop is stranded:
	// the client never completes its trace and the loss is visible.
	if cl.Done() {
		t.Error("client completed despite a lost message — the protocol has no retransmission")
	}
	if eng.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", eng.Dropped())
	}
	if got := cl.Collector().Requests(); got != 2 {
		t.Errorf("completed %d requests before the loss, want 2", got)
	}
}

func TestLossStrandsOpenLoopPartially(t *testing.T) {
	// Open-loop injection keeps going past a loss (arrivals are timer
	// driven), so exactly the chains whose messages were dropped are
	// missing — loss is proportional, not total.
	eng := NewVEngine(LatencyModel{ClientProxy: 1})
	echo := &delayProbe{id: 0, reply: true}
	if err := eng.Register(echo); err != nil {
		t.Fatal(err)
	}
	objs := make([]ids.ObjectID, 20)
	cl, err := NewOpenLoopClient(OpenLoopConfig{
		Source:        trace.NewSliceSource(objs),
		Proxies:       []ids.NodeID{0},
		IntervalTicks: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(cl); err != nil {
		t.Fatal(err)
	}
	// Drop every 7th network transfer.
	n := 0
	eng.SetDropFilter(func(m msg.Message) bool {
		n++
		return n%7 == 0
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if cl.Done() {
		t.Error("open-loop client reported done despite stranded requests")
	}
	if cl.Outstanding() == 0 {
		t.Error("expected stranded outstanding requests after losses")
	}
	completed := cl.Collector().Requests()
	if completed == 0 || completed >= 20 {
		t.Errorf("completed = %d, want partial completion", completed)
	}
	if completed+uint64(cl.Outstanding()) != 20 {
		t.Errorf("completed %d + outstanding %d != injected 20",
			completed, cl.Outstanding())
	}
}

func TestDroppedSendIsNotRecycled(t *testing.T) {
	// Ownership rule: Send returning normally gives the caller no signal
	// that the fault filter discarded the message, so the engine must NOT
	// recycle a dropped message — the caller may still reference it. If
	// the engine fed dropped messages to its freelist, the next
	// AcquireRequest would hand the same struct to a different owner and
	// the caller's retained pointer would be silently rewritten.
	eng := NewVEngine(LatencyModel{ClientProxy: 1})
	eng.SetDropFilter(func(msg.Message) bool { return true })

	req := eng.AcquireRequest()
	req.To = 0
	req.ID = ids.NewRequestID(0, 1)
	req.Object = 77
	req.Client = ids.Client(0)
	eng.Send(req) // dropped: ownership stays with us

	// The freelist must not contain the dropped message: a fresh acquire
	// returns a different struct.
	next := eng.AcquireRequest()
	if next == req {
		t.Fatal("engine recycled a dropped message the caller still references")
	}
	// And the dropped message is untouched apart from the hop count that
	// Send legitimately added.
	if req.Object != 77 || req.ID != ids.NewRequestID(0, 1) || req.Hops != 1 {
		t.Errorf("dropped message mutated: %+v", req)
	}

	// Contrast: explicit release does recycle — pointer identity proves
	// the freelist path works when ownership is genuinely handed over.
	eng.ReleaseRequest(next)
	if got := eng.AcquireRequest(); got != next {
		t.Error("released request was not recycled")
	}
}

func TestFaultPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan FaultPlan
		ok   bool
	}{
		{"zero plan", FaultPlan{}, true},
		{"loss in range", FaultPlan{Loss: 0.5}, true},
		{"loss negative", FaultPlan{Loss: -0.1}, false},
		{"loss above one", FaultPlan{Loss: 1.1}, false},
		{"jitter negative", FaultPlan{Jitter: -1}, false},
		{"link rate bad", FaultPlan{LinkLoss: []LinkLoss{{Rate: 2}}}, false},
		{"crash at zero", FaultPlan{Crashes: []Crash{{Node: 0, At: 0}}}, false},
		{"restart before crash", FaultPlan{Crashes: []Crash{{Node: 0, At: 10, RestartAt: 5}}}, false},
		{"crash ok", FaultPlan{Crashes: []Crash{{Node: 0, At: 10, RestartAt: 20}}}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate()
			if tc.ok && err != nil {
				t.Errorf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Error("expected a validation error")
			}
		})
	}
}

func TestRecoveryNormalizeAndValidate(t *testing.T) {
	// Disabled passes through untouched and validates vacuously.
	var zero Recovery
	if got := zero.Normalize(); got != zero {
		t.Errorf("disabled Normalize mutated: %+v", got)
	}
	if err := zero.Validate(); err != nil {
		t.Errorf("disabled Validate: %v", err)
	}
	// Enabled zero fields fill with the defaults.
	got := Recovery{Enabled: true}.Normalize()
	if got != DefaultRecovery() {
		t.Errorf("Normalize = %+v, want defaults %+v", got, DefaultRecovery())
	}
	// Explicit fields survive normalization.
	custom := Recovery{Enabled: true, Timeout: 123, MaxRetries: 2, Backoff: 1.5, PendingTTL: 456}
	if got := custom.Normalize(); got != custom {
		t.Errorf("Normalize clobbered explicit fields: %+v", got)
	}
	for _, bad := range []Recovery{
		{Enabled: true, Timeout: -1, MaxRetries: 1, Backoff: 2, PendingTTL: 1},
		{Enabled: true, Timeout: 1, MaxRetries: -1, Backoff: 2, PendingTTL: 1},
		{Enabled: true, Timeout: 1, MaxRetries: 1, Backoff: 0.5, PendingTTL: 1},
		{Enabled: true, Timeout: 1, MaxRetries: 1, Backoff: 2, PendingTTL: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", bad)
		}
	}
}

// restartProbe is an echo server that records crash-driven restarts.
type restartProbe struct {
	delayProbe
	restarts   int
	lostTables bool
}

func (p *restartProbe) Restart(loseTables bool) {
	p.restarts++
	p.lostTables = loseTables
}

func TestCrashWindowDropsAndRecoveryRetransmits(t *testing.T) {
	// The server fail-stops during [95, 400): with a 10-tick one-way
	// latency the closed loop turns a request around every ~20 ticks, so
	// several requests die at delivery inside the window (CrashDrops).
	// The recovery client times out and retransmits until the restarted
	// server answers; the closed loop must complete the full trace.
	eng := NewVEngine(LatencyModel{ClientProxy: 10})
	probe := &restartProbe{delayProbe: delayProbe{id: 0, reply: true}}
	if err := eng.Register(probe); err != nil {
		t.Fatal(err)
	}
	cl, err := NewClient(ClientConfig{
		Source:  trace.NewSliceSource(make([]ids.ObjectID, 30)),
		Proxies: []ids.NodeID{0},
		Recovery: Recovery{
			Enabled: true, Timeout: 120, MaxRetries: 20, Backoff: 2, PendingTTL: 10_000,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(cl); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetFaultPlan(&FaultPlan{
		Crashes: []Crash{{Node: 0, At: 95, RestartAt: 400, LoseTables: true}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !cl.Done() {
		t.Error("client did not complete despite retransmission across the crash window")
	}
	stats := eng.FaultStats()
	if stats.Crashes != 1 || stats.Restarts != 1 {
		t.Errorf("crashes/restarts = %d/%d, want 1/1", stats.Crashes, stats.Restarts)
	}
	if stats.CrashDrops == 0 {
		t.Error("no deliveries were dropped during the crash window")
	}
	if probe.restarts != 1 || !probe.lostTables {
		t.Errorf("probe restarts=%d lostTables=%v, want 1/true", probe.restarts, probe.lostTables)
	}
	if got := cl.Collector().Requests(); got != 30 {
		t.Errorf("completed %d requests, want 30", got)
	}
	if cl.Collector().Retries() == 0 {
		t.Error("recovery never retransmitted")
	}
}

func TestFaultTransferStreamDeterministic(t *testing.T) {
	// The per-transfer draw sequence (loss → link → jitter) is a pure
	// function of the plan seed and the transfer sequence.
	plan := &FaultPlan{
		Seed:     99,
		Loss:     0.3,
		Jitter:   50,
		LinkLoss: []LinkLoss{{From: 1, To: 2, Rate: 0.5}},
	}
	seq := func() ([]int64, []bool) {
		f := newFaultState(plan)
		delays := make([]int64, 0, 200)
		oks := make([]bool, 0, 200)
		for i := 0; i < 200; i++ {
			d, ok := f.transfer(ids.NodeID(i%3), ids.NodeID((i+1)%3), 100)
			delays = append(delays, d)
			oks = append(oks, ok)
		}
		return delays, oks
	}
	d1, ok1 := seq()
	d2, ok2 := seq()
	for i := range d1 {
		if d1[i] != d2[i] || ok1[i] != ok2[i] {
			t.Fatalf("transfer %d diverged: (%d,%v) vs (%d,%v)", i, d1[i], ok1[i], d2[i], ok2[i])
		}
	}
	drops := 0
	for _, ok := range ok1 {
		if !ok {
			drops++
		}
	}
	if drops == 0 || drops == len(ok1) {
		t.Errorf("drops = %d of %d; the stream exercises nothing", drops, len(ok1))
	}
}

func TestNoLossMeansNoStranding(t *testing.T) {
	// Control: with the filter installed but never firing, everything
	// completes — the stranding above is caused by loss alone.
	eng := NewVEngine(LatencyModel{ClientProxy: 1})
	echo := &delayProbe{id: 0, reply: true}
	if err := eng.Register(echo); err != nil {
		t.Fatal(err)
	}
	cl, err := NewClient(ClientConfig{
		Source:  trace.NewSliceSource(make([]ids.ObjectID, 10)),
		Proxies: []ids.NodeID{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(cl); err != nil {
		t.Fatal(err)
	}
	eng.SetDropFilter(func(msg.Message) bool { return false })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !cl.Done() || eng.Dropped() != 0 {
		t.Errorf("control run wrong: done=%v dropped=%d", cl.Done(), eng.Dropped())
	}
}
