package ids

import "fmt"

// ShardMap partitions the NodeID space across the shards of a parallel
// engine (internal/sim.PEngine). The partition is pure arithmetic — no maps
// — so ShardOf stays cheap enough to call on every cross-shard Send.
//
// The grouping heuristic is "proxies with their clients": the proxy ID
// range [0, ProxySpan) splits into contiguous blocks, one block per shard,
// and client i is colocated with its home proxy (i mod ProxySpan). Under
// the round-robin-ish client wiring the cluster layer uses, that keeps a
// client on the same shard as the proxy it most often enters, so the bulk
// of client↔proxy traffic never crosses a shard boundary — the min-cut-ish
// objective without solving an actual min-cut. The origin server lives on
// shard 0: it is a single node and cannot be split, only colocated.
//
// A ShardMap is immutable after construction and safe for concurrent use.
type ShardMap struct {
	shards    int
	proxySpan int
}

// NewShardMap builds the partition for a topology whose proxy-range IDs are
// the contiguous block [0, proxySpan). shards must be at least 1; a
// one-shard map degenerates to "everything on shard 0".
func NewShardMap(shards, proxySpan int) (ShardMap, error) {
	if shards < 1 {
		return ShardMap{}, fmt.Errorf("ids: shard count must be at least 1, got %d", shards)
	}
	if proxySpan < 1 {
		return ShardMap{}, fmt.Errorf("ids: proxy span must be at least 1, got %d", proxySpan)
	}
	return ShardMap{shards: shards, proxySpan: proxySpan}, nil
}

// Shards returns the number of shards in the partition.
func (m ShardMap) Shards() int { return m.shards }

// ShardOf maps any NodeID to its owning shard. The function is total:
// proxies map by contiguous block, clients colocate with their home proxy,
// and the origin (and any reserved ID) lands on shard 0.
func (m ShardMap) ShardOf(id NodeID) int {
	switch {
	case id.IsProxy():
		p := int(id)
		if p >= m.proxySpan {
			// Defensive: an out-of-span proxy ID (never produced by the
			// cluster wiring) still maps somewhere stable.
			p = m.proxySpan - 1
		}
		return p * m.shards / m.proxySpan
	case id.IsClient():
		home := id.ClientIndex() % m.proxySpan
		return home * m.shards / m.proxySpan
	default: // Origin, None and the reserved gap
		return 0
	}
}
