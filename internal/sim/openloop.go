package sim

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/metrics"
	"github.com/adc-sim/adc/internal/msg"
	"github.com/adc-sim/adc/internal/obs"
	"github.com/adc-sim/adc/internal/workload"
)

// tick is the open-loop client's private timer message. Each client owns a
// single tick it schedules repeatedly — at most one is ever in flight, so
// reusing the pointer is safe and avoids boxing an allocation into the
// msg.Message interface on every injection.
type tick struct{ to ids.NodeID }

// Dest implements msg.Message.
func (t *tick) Dest() ids.NodeID { return t.to }

// OpenLoopClient injects requests at a configured arrival rate regardless
// of outstanding replies — the way Web Polygraph drives a proxy farm
// ("TheBench.peak_req_rate = 100/sec", paper Fig. 10). Multiple requests
// are in flight at once, so unlike the closed-loop Client it exercises
// queueing and interleaving; it requires the virtual-time engine (its
// timer is the Scheduler interface) and remains fully deterministic there.
type OpenLoopClient struct {
	id      ids.NodeID
	src     workload.Source
	proxies []ids.NodeID
	policy  EntryPolicy
	// rng is created on first draw (see rand): a rand.Rand is ~5 KB, and a
	// million-client run with fixed arrivals and a deterministic entry
	// policy never draws at all.
	rng       *rand.Rand
	seed      int64
	collector *metrics.Collector
	maxHops   int
	recovery  Recovery

	// interval is the mean inter-arrival time in virtual ticks; poisson
	// selects exponential instead of fixed spacing.
	interval int64
	poisson  bool

	counter     uint64
	rr          int
	injected    int
	timer       *tick
	outstanding map[ids.RequestID]openReq
	exhausted   bool
	done        bool
	onDone      func()

	// tracer and ts are the optional observability hooks (nil = off).
	tracer *obs.Tracer
	ts     *metrics.TimeSeries
}

// openReq is the book-keeping for one in-flight open-loop request.
type openReq struct {
	// sentAt is the first attempt's virtual send time; retransmissions
	// keep it so response time stays user-perceived.
	sentAt int64
	// obj, retries and timeout track the recovery protocol's
	// retransmission state (unused when recovery is disabled).
	obj     ids.ObjectID
	retries int
	timeout int64
}

var (
	_ Node    = (*OpenLoopClient)(nil)
	_ Starter = (*OpenLoopClient)(nil)
)

// OpenLoopConfig assembles an OpenLoopClient.
type OpenLoopConfig struct {
	// Index, Source, Proxies, Policy, Seed, Collector, MaxHops, OnDone
	// mirror ClientConfig.
	Index     int
	Source    workload.Source
	Proxies   []ids.NodeID
	Policy    EntryPolicy
	Seed      int64
	Collector *metrics.Collector
	MaxHops   int
	OnDone    func()

	// IntervalTicks is the mean inter-arrival time in virtual ticks.
	IntervalTicks int64
	// Poisson draws exponential inter-arrival times instead of fixed.
	Poisson bool
	// Recovery enables timeouts and retransmission (the zero value keeps
	// the paper-faithful lossless protocol).
	Recovery Recovery
}

// NewOpenLoopClient builds an open-loop driver.
func NewOpenLoopClient(cfg OpenLoopConfig) (*OpenLoopClient, error) {
	if cfg.Source == nil {
		return nil, fmt.Errorf("sim: open-loop client %d needs a workload source", cfg.Index)
	}
	if len(cfg.Proxies) == 0 {
		return nil, fmt.Errorf("sim: open-loop client %d needs at least one proxy", cfg.Index)
	}
	if cfg.IntervalTicks <= 0 {
		return nil, fmt.Errorf("sim: open-loop interval must be positive, got %d", cfg.IntervalTicks)
	}
	if cfg.Collector == nil {
		cfg.Collector = metrics.NewCollector(metrics.WithSampleEvery(0))
	}
	cfg.Recovery = cfg.Recovery.Normalize()
	if err := cfg.Recovery.Validate(); err != nil {
		return nil, err
	}
	return &OpenLoopClient{
		id:          ids.Client(cfg.Index),
		src:         cfg.Source,
		proxies:     cfg.Proxies,
		policy:      cfg.Policy,
		seed:        cfg.Seed,
		collector:   cfg.Collector,
		maxHops:     cfg.MaxHops,
		recovery:    cfg.Recovery,
		interval:    cfg.IntervalTicks,
		poisson:     cfg.Poisson,
		timer:       &tick{to: ids.Client(cfg.Index)},
		outstanding: make(map[ids.RequestID]openReq),
		onDone:      cfg.OnDone,
	}, nil
}

// ID implements Node.
func (c *OpenLoopClient) ID() ids.NodeID { return c.id }

// Collector returns the metrics sink.
func (c *OpenLoopClient) Collector() *metrics.Collector { return c.collector }

// Done reports whether the trace is exhausted and every reply received.
func (c *OpenLoopClient) Done() bool { return c.done }

// SetOnDone installs the completion callback before the run starts.
func (c *OpenLoopClient) SetOnDone(fn func()) { c.onDone = fn }

// SetTracer installs the request tracer (before the run starts).
func (c *OpenLoopClient) SetTracer(t *obs.Tracer) { c.tracer = t }

// SetTimeSeries installs the shared time-series recorder (before the run
// starts).
func (c *OpenLoopClient) SetTimeSeries(ts *metrics.TimeSeries) { c.ts = ts }

// Outstanding returns the number of in-flight requests (test support).
func (c *OpenLoopClient) Outstanding() int { return len(c.outstanding) }

// Injected returns the number of logical requests injected so far;
// retransmissions of a timed-out request count once.
func (c *OpenLoopClient) Injected() uint64 { return uint64(c.injected) }

// Start implements Starter. The context must support virtual-time
// scheduling; the cluster layer guarantees it by only pairing this client
// with the virtual-time engine.
func (c *OpenLoopClient) Start(ctx Context) {
	sched, ok := ctx.(Scheduler)
	if !ok {
		panic("sim: OpenLoopClient requires a virtual-time engine (Scheduler)")
	}
	sched.After(0, c.timer)
}

// Handle implements Node: ticks inject, replies complete, retry timers
// (recovery mode only) retransmit or abandon.
func (c *OpenLoopClient) Handle(ctx Context, m msg.Message) {
	switch t := m.(type) {
	case *tick:
		c.inject(ctx)
	case *msg.Reply:
		c.complete(ctx, t)
	case *retryTimer:
		c.handleTimeout(ctx, t)
	}
}

func (c *OpenLoopClient) inject(ctx Context) {
	obj, ok := c.src.Next()
	if !ok {
		c.exhausted = true
		c.maybeFinish()
		return
	}
	clk := ctx.(Clock) // Start already proved the engine supports it
	c.counter++
	id := ids.NewRequestID(c.id.ClientIndex(), c.counter)
	c.outstanding[id] = openReq{sentAt: clk.VNow(), obj: obj, timeout: c.recovery.Timeout}
	c.injected++
	c.ts.Inject(clk.VNow())
	req := NewRequest(ctx)
	req.To = c.pickEntry()
	req.ID = id
	req.Object = obj
	req.Client = c.id
	req.Sender = c.id
	req.MaxHops = c.maxHops
	if c.tracer.Enabled(obs.KindInject) {
		e := obs.Ev(obs.KindInject, c.id)
		e.At = clk.VNow()
		e.Req = id
		e.Obj = obj
		e.To = req.To
		c.tracer.Emit(e)
	}
	ctx.Send(req)
	if c.recovery.Enabled {
		ctx.(Scheduler).After(c.recovery.Timeout, &retryTimer{to: c.id, id: id})
	}
	ctx.(Scheduler).After(c.nextGap(), c.timer)
}

func (c *OpenLoopClient) complete(ctx Context, rep *msg.Reply) {
	if c.recovery.Enabled {
		if _, ok := c.outstanding[rep.ID]; !ok {
			// Duplicate from a retransmitted chain, or a reply racing
			// its own timeout: the request was already completed or
			// superseded, so only recycle.
			if c.tracer.Enabled(obs.KindStaleReply) {
				e := obs.Ev(obs.KindStaleReply, c.id)
				e.At = traceNow(ctx)
				e.Req = rep.ID
				e.Obj = rep.Object
				c.tracer.Emit(e)
			}
			c.collector.RecordStaleReply()
			Finish(ctx, rep)
			return
		}
	}
	c.collector.Record(!rep.FromOrigin, rep.Hops, rep.PathLen)
	if r, ok := c.outstanding[rep.ID]; ok {
		if clk, isClock := ctx.(Clock); isClock {
			c.collector.RecordResponse(clk.VNow() - r.sentAt)
		}
		delete(c.outstanding, rep.ID)
	}
	if c.tracer.Enabled(obs.KindDeliver) {
		e := obs.Ev(obs.KindDeliver, c.id)
		e.At = traceNow(ctx)
		e.Req = rep.ID
		e.Obj = rep.Object
		e.Loc = rep.Resolver
		e.Hops = int32(rep.Hops)
		if rep.FromOrigin {
			e.Arg = 1
		}
		c.tracer.Emit(e)
	}
	if c.ts != nil {
		c.ts.Complete(traceNow(ctx), !rep.FromOrigin, int32(rep.Hops))
	}
	Finish(ctx, rep) // terminal delivery: the reply recycles
	c.maybeFinish()
}

// handleTimeout retransmits a timed-out request under a fresh ID with
// exponential backoff, or abandons it once the retry budget is spent. A
// timer whose ID is no longer outstanding is stale (the reply won) and is
// ignored.
func (c *OpenLoopClient) handleTimeout(ctx Context, t *retryTimer) {
	if !c.recovery.Enabled {
		return
	}
	r, ok := c.outstanding[t.id]
	if !ok {
		return // answered or superseded
	}
	c.collector.RecordTimeout()
	if c.tracer.Enabled(obs.KindTimeout) {
		e := obs.Ev(obs.KindTimeout, c.id)
		e.At = traceNow(ctx)
		e.Req = t.id
		e.Obj = r.obj
		c.tracer.Emit(e)
	}
	c.ts.Timeout(traceNow(ctx))
	delete(c.outstanding, t.id)
	if r.retries >= c.recovery.MaxRetries {
		c.collector.RecordAbandoned()
		if c.tracer.Enabled(obs.KindAbandon) {
			e := obs.Ev(obs.KindAbandon, c.id)
			e.At = traceNow(ctx)
			e.Req = t.id
			e.Obj = r.obj
			e.Arg = int64(r.retries)
			c.tracer.Emit(e)
		}
		c.ts.Abandon(traceNow(ctx))
		c.maybeFinish()
		return
	}
	c.collector.RecordRetry()
	c.ts.Retry(traceNow(ctx))
	c.counter++
	id := ids.NewRequestID(c.id.ClientIndex(), c.counter)
	r.retries++
	r.timeout = int64(float64(r.timeout) * c.recovery.Backoff)
	c.outstanding[id] = r
	req := NewRequest(ctx)
	req.To = c.pickEntry()
	req.ID = id
	req.Object = r.obj
	req.Client = c.id
	req.Sender = c.id
	req.MaxHops = c.maxHops
	if c.tracer.Enabled(obs.KindRetry) {
		e := obs.Ev(obs.KindRetry, c.id)
		e.At = traceNow(ctx)
		e.Req = id
		e.Obj = r.obj
		e.To = req.To
		e.Prev = t.id
		e.Arg = int64(r.retries)
		c.tracer.Emit(e)
	}
	ctx.Send(req)
	ctx.(Scheduler).After(r.timeout, &retryTimer{to: c.id, id: id})
}

func (c *OpenLoopClient) maybeFinish() {
	if !c.done && c.exhausted && len(c.outstanding) == 0 {
		c.done = true
		if c.onDone != nil {
			c.onDone()
		}
	}
}

// rand returns the client's private random stream, created on first use.
// Lazy creation changes nothing observable — the stream is seeded the same
// whenever it is built — but leaves rng nil for the common large-scale
// configuration (fixed arrivals, fixed or round-robin entry), which never
// draws.
func (c *OpenLoopClient) rand() *rand.Rand {
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(c.seed ^ 0x0BADCAFE))
	}
	return c.rng
}

// nextGap draws the next inter-arrival time.
func (c *OpenLoopClient) nextGap() int64 {
	if !c.poisson {
		return c.interval
	}
	rng := c.rand()
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	gap := int64(-math.Log(u) * float64(c.interval))
	if gap < 1 {
		gap = 1
	}
	return gap
}

func (c *OpenLoopClient) pickEntry() ids.NodeID {
	switch c.policy {
	case EntryRoundRobin:
		p := c.proxies[c.rr%len(c.proxies)]
		c.rr++
		return p
	case EntryFixed:
		return c.proxies[0]
	default:
		return c.proxies[c.rand().Intn(len(c.proxies))]
	}
}
