// Command adctrace inspects request-path traces recorded by adcsim -trace
// or adcfarm -trace (JSON Lines, one event per line).
//
//	adctrace summary trace.jsonl             # event counts, trees, convergence
//	adctrace request 0:17 trace.jsonl        # one request's full hop tree
//	adctrace converge trace.jsonl            # per-object convergence times
//	adctrace converge www.xy42 trace.jsonl   # one object's convergence
//	adctrace validate trace.jsonl            # structural well-formedness
//	adctrace chrome trace.jsonl > t.json     # Chrome trace_event export
//
// The farm subcommand instead reads cross-proxy span dumps (the HTTP
// farm's distributed traces), merges them with clock-skew alignment and
// reports the request-tree census:
//
//	adctrace farm run.spans.json             # file from adcload -trace-dump
//	adctrace farm http://host:7001 ...       # scrape live /debug/trace rings
//	adctrace farm -min-complete 0.99 ...     # CI gate: fail on orphaned trees
//	adctrace farm -chrome t.json ...         # flame chart per request
//
// Request IDs are accepted as client:counter (the req(c:n) display form)
// or as a raw 64-bit value; objects as www.xyN or a raw value.
package main

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "adctrace:", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: adctrace <summary|request|converge|validate|chrome> [arguments] <trace.jsonl>\n" +
		"       adctrace farm [flags] <dumps.json | proxy-url...>")
}

func run(args []string) error {
	if len(args) >= 1 && args[0] == "farm" {
		return farm(args[1:])
	}
	if len(args) < 2 {
		return usage()
	}
	cmd := args[0]
	file := args[len(args)-1]
	rest := args[1 : len(args)-1]

	events, err := loadTrace(file)
	if err != nil {
		return err
	}

	switch cmd {
	case "summary":
		if len(rest) != 0 {
			return usage()
		}
		return summary(events)
	case "request":
		if len(rest) != 1 {
			return fmt.Errorf("usage: adctrace request <id> <trace.jsonl>")
		}
		id, err := parseRequestID(rest[0])
		if err != nil {
			return err
		}
		return request(events, id)
	case "converge":
		if len(rest) > 1 {
			return fmt.Errorf("usage: adctrace converge [object] <trace.jsonl>")
		}
		var obj *ids.ObjectID
		if len(rest) == 1 {
			o, err := parseObjectID(rest[0])
			if err != nil {
				return err
			}
			obj = &o
		}
		return converge(events, obj)
	case "validate":
		if len(rest) != 0 {
			return usage()
		}
		if err := obs.Validate(events); err != nil {
			return err
		}
		fmt.Printf("%s: %d events, well-formed\n", file, len(events))
		return nil
	case "chrome":
		if len(rest) != 0 {
			return usage()
		}
		return obs.WriteChrome(os.Stdout, events)
	default:
		return usage()
	}
}

func loadTrace(path string) ([]obs.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //nolint:errcheck // read side
	return obs.ReadJSONL(f)
}

// summary prints event-kind counts, the request-tree census and the
// convergence overview.
func summary(events []obs.Event) error {
	if len(events) == 0 {
		fmt.Println("empty trace")
		return nil
	}
	var counts [64]int
	for _, e := range events {
		if int(e.Kind) < len(counts) {
			counts[e.Kind]++
		}
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "kind\tevents")
	for k, n := range counts {
		if n > 0 {
			fmt.Fprintf(w, "%s\t%d\n", obs.Kind(k), n)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}

	trees := obs.BuildTrees(events)
	var delivered, abandoned, orphans, retransmitted int
	for _, t := range trees {
		switch {
		case t.Orphan:
			orphans++
		case t.Delivered():
			delivered++
		default:
			abandoned++
		}
		if len(t.Attempts) > 1 {
			retransmitted++
		}
	}
	fmt.Printf("\nrequests       %d trees (%d delivered, %d undelivered, %d orphaned)\n",
		len(trees), delivered, abandoned, orphans)
	fmt.Printf("retransmitted  %d trees with >1 attempt\n", retransmitted)

	sum := obs.SummarizeConvergence(obs.ConvergenceTimes(events))
	if sum.Objects > 0 {
		fmt.Printf("convergence    %d/%d objects agreed (mean %.0f, max %d ticks to agree)\n",
			sum.Converged, sum.Objects, sum.MeanTime, sum.MaxTime)
	}
	return nil
}

// request prints one request's full hop tree, all attempts included.
func request(events []obs.Event, id ids.RequestID) error {
	trees := obs.BuildTrees(events)
	t := obs.TreeFor(trees, id)
	if t == nil {
		return fmt.Errorf("request %v not in trace", id)
	}
	obs.FormatTree(os.Stdout, t)
	return nil
}

// converge prints per-object convergence times, or one object's.
func converge(events []obs.Event, only *ids.ObjectID) error {
	m := obs.ConvergenceTimes(events)
	if only != nil {
		c, ok := m[*only]
		if !ok {
			return fmt.Errorf("object %v not in trace", *only)
		}
		printConvergence(os.Stdout, c)
		return nil
	}

	objs := make([]ids.ObjectID, 0, len(m))
	for obj := range m {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "object\tfirst seen\tconverged\tstable from\ttime to agree\tlocation\tbelievers")
	for _, obj := range objs {
		c := m[obj]
		if c.Converged {
			fmt.Fprintf(w, "%v\t%d\tyes\t%d\t%d\t%v\t%d\n",
				c.Obj, c.FirstSeen, c.StableFrom, c.Time(), c.FinalLoc, c.Believers)
		} else {
			fmt.Fprintf(w, "%v\t%d\tno\t-\t-\t-\t%d\n", c.Obj, c.FirstSeen, c.Believers)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	sum := obs.SummarizeConvergence(m)
	fmt.Printf("\n%d/%d objects agreed (mean %.0f, max %d ticks to agree)\n",
		sum.Converged, sum.Objects, sum.MeanTime, sum.MaxTime)
	return nil
}

func printConvergence(w *os.File, c *obs.Convergence) {
	fmt.Fprintf(w, "object      %v\n", c.Obj)
	fmt.Fprintf(w, "first seen  %d\n", c.FirstSeen)
	if c.Converged {
		fmt.Fprintf(w, "converged   yes, stable from %d (%d ticks after first sight)\n",
			c.StableFrom, c.Time())
		fmt.Fprintf(w, "location    %v (%d believers)\n", c.FinalLoc, c.Believers)
	} else {
		fmt.Fprintf(w, "converged   no (%d believers at trace end)\n", c.Believers)
	}
}

// parseRequestID accepts "client:counter" or a raw 64-bit value.
func parseRequestID(s string) (ids.RequestID, error) {
	if c, n, ok := strings.Cut(s, ":"); ok {
		client, err := strconv.Atoi(c)
		if err != nil || client < 0 {
			return 0, fmt.Errorf("bad request id %q: client must be a non-negative integer", s)
		}
		counter, err := strconv.ParseUint(n, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad request id %q: counter must be an integer", s)
		}
		return ids.NewRequestID(client, counter), nil
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad request id %q (want client:counter or a raw value)", s)
	}
	return ids.RequestID(v), nil
}

// parseObjectID accepts the www.xyN display form or a raw value.
func parseObjectID(s string) (ids.ObjectID, error) {
	s = strings.TrimPrefix(s, "www.xy")
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad object id %q (want www.xyN or a raw value)", s)
	}
	return ids.ObjectID(v), nil
}
