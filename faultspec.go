package adc

import (
	"fmt"
	"strconv"
	"strings"
)

// Spec-string forms of FaultPlan and Recovery, so the CLI tools can take a
// whole failure schedule in one flag:
//
//	-faults  'loss=0.01,jitter=2000,seed=7,crash=0@2000000-4000000!,link=1>2:0.05'
//	-recovery 'timeout=400000,retries=8,backoff=2,ttl=1000000'
//
// Crash clauses read PROXY@AT[-RESTART][!]; the trailing '!' selects a cold
// restart (tables lost). Link clauses read FROM>TO:RATE with 0-based proxy
// indices. Every duration is in virtual ticks.

// ParseFaultSpec parses the comma-separated fault-plan spec. An empty spec
// returns an error: a plan with no clauses would silently inject nothing.
func ParseFaultSpec(spec string) (*FaultPlan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("adc: empty fault spec")
	}
	plan := &FaultPlan{}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("adc: fault clause %q is not key=value", clause)
		}
		var err error
		switch key {
		case "loss":
			plan.Loss, err = strconv.ParseFloat(val, 64)
		case "jitter":
			plan.Jitter, err = strconv.ParseInt(val, 10, 64)
		case "seed":
			plan.Seed, err = strconv.ParseInt(val, 10, 64)
		case "crash":
			var cr Crash
			cr, err = parseCrashClause(val)
			plan.Crashes = append(plan.Crashes, cr)
		case "link":
			var ll LinkLoss
			ll, err = parseLinkClause(val)
			plan.LinkLoss = append(plan.LinkLoss, ll)
		default:
			return nil, fmt.Errorf("adc: unknown fault key %q (want loss, jitter, seed, crash or link)", key)
		}
		if err != nil {
			return nil, fmt.Errorf("adc: fault clause %q: %w", clause, err)
		}
	}
	return plan, nil
}

// parseCrashClause reads PROXY@AT[-RESTART][!].
func parseCrashClause(s string) (Crash, error) {
	var cr Crash
	if strings.HasSuffix(s, "!") {
		cr.LoseTables = true
		s = strings.TrimSuffix(s, "!")
	}
	node, times, ok := strings.Cut(s, "@")
	if !ok {
		return cr, fmt.Errorf("want PROXY@AT[-RESTART][!]")
	}
	var err error
	if cr.Proxy, err = strconv.Atoi(node); err != nil {
		return cr, err
	}
	at, restart, hasRestart := strings.Cut(times, "-")
	if cr.At, err = strconv.ParseInt(at, 10, 64); err != nil {
		return cr, err
	}
	if hasRestart {
		if cr.RestartAt, err = strconv.ParseInt(restart, 10, 64); err != nil {
			return cr, err
		}
	}
	return cr, nil
}

// parseLinkClause reads FROM>TO:RATE.
func parseLinkClause(s string) (LinkLoss, error) {
	var ll LinkLoss
	link, rate, ok := strings.Cut(s, ":")
	if !ok {
		return ll, fmt.Errorf("want FROM>TO:RATE")
	}
	from, to, ok := strings.Cut(link, ">")
	if !ok {
		return ll, fmt.Errorf("want FROM>TO:RATE")
	}
	var err error
	if ll.FromProxy, err = strconv.Atoi(from); err != nil {
		return ll, err
	}
	if ll.ToProxy, err = strconv.Atoi(to); err != nil {
		return ll, err
	}
	ll.Rate, err = strconv.ParseFloat(rate, 64)
	return ll, err
}

// ParseRecoverySpec parses the comma-separated recovery spec. An empty spec
// selects the reference defaults — "-recovery ”" means "turn it on".
func ParseRecoverySpec(spec string) (*Recovery, error) {
	r := &Recovery{}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("adc: recovery clause %q is not key=value", clause)
		}
		var err error
		switch key {
		case "timeout":
			r.Timeout, err = strconv.ParseInt(val, 10, 64)
		case "retries":
			r.MaxRetries, err = strconv.Atoi(val)
		case "backoff":
			r.Backoff, err = strconv.ParseFloat(val, 64)
		case "ttl":
			r.PendingTTL, err = strconv.ParseInt(val, 10, 64)
		default:
			return nil, fmt.Errorf("adc: unknown recovery key %q (want timeout, retries, backoff or ttl)", key)
		}
		if err != nil {
			return nil, fmt.Errorf("adc: recovery clause %q: %w", clause, err)
		}
	}
	return r, nil
}
