// Package proxy implements the ADC proxy agent: the event handlers of the
// paper's §IV (Receive_Request, Fig. 5; Forward_Addr, Fig. 6;
// Receive_Reply, Fig. 7) on top of the mapping tables of internal/core.
//
// Each proxy is an autonomous agent: it owns its tables, its pending-request
// set, its random generator and its logical clock, and interacts with the
// rest of the system exclusively through messages. "The algorithm for ADC
// is implemented in every running proxy with an equal setting without any
// further modifications or fine-tuning" (§IV).
package proxy

import (
	"fmt"
	"math/rand"

	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/metrics"
	"github.com/adc-sim/adc/internal/msg"
	"github.com/adc-sim/adc/internal/obs"
	"github.com/adc-sim/adc/internal/sim"
)

// Config assembles one ADC proxy.
type Config struct {
	// ID is the proxy's node ID (0-based).
	ID ids.NodeID
	// Peers lists every proxy in the system including this one; random
	// forwarding selects "over the set of known proxies including
	// itself" (Fig. 6).
	Peers []ids.NodeID
	// Tables sizes the three mapping tables.
	Tables core.Config
	// Seed derives the proxy's private random stream. Two proxies in
	// one cluster receive different streams (the cluster XORs the ID in).
	Seed int64
	// Recovery enables pending-entry TTL expiry and stale-location
	// invalidation (virtual-time engine only; the zero value keeps the
	// paper-faithful protocol, where pending entries only retire via
	// backwarding replies).
	Recovery sim.Recovery
	// Replication enables the hot-object replication controller (the
	// zero value keeps the paper-faithful single-location protocol).
	Replication Replication
}

// pendingPass is the loop-detection state for one in-flight request ID:
// how many forwarding passes await their backwarding reply, and — with
// recovery enabled — when the entry expires and which learned location the
// latest pass trusted (so an unanswered forward can demote it).
type pendingPass struct {
	count    int
	expireAt int64
	obj      ids.ObjectID
	learned  ids.NodeID
}

// expiryRec is one scheduled pending-entry expiry check. Records enter the
// queue in expireAt order (the virtual clock is monotonic and the TTL is
// constant), so a plain FIFO suffices — no heap, no map iteration, fully
// deterministic.
type expiryRec struct {
	id ids.RequestID
	at int64
}

// sweepTimer is the proxy's private pending-expiry timer message. The
// proxy keeps at most one armed sweep; the timer drives virtual time
// forward past the last request, so even passes stranded at the very end
// of a run expire and PendingLen drains to zero.
type sweepTimer struct{ to ids.NodeID }

// Dest implements msg.Message.
func (t *sweepTimer) Dest() ids.NodeID { return t.to }

// ADC is one Adaptive Distributed Caching proxy agent.
type ADC struct {
	id     ids.NodeID
	peers  []ids.NodeID
	tables *core.Tables
	rng    *rand.Rand

	// localTime is "the counter for the received requests [which]
	// represents the local clock of the proxy" (§IV.1).
	localTime int64

	// pending counts, per in-flight request ID, how many times this
	// proxy has forwarded it and not yet seen the reply pass back. A
	// request arriving while pending is a loop (§III.1). Counts (not
	// booleans) handle self-forwarding, where the same proxy legally
	// appears twice on the path.
	pending map[ids.RequestID]pendingPass

	// recovery state: the FIFO of expiry checks (head-indexed so pops
	// are O(1) without reallocating) and the single armed sweep timer.
	recovery   sim.Recovery
	tablesCfg  core.Config
	expiryQ    []expiryRec
	expiryHead int
	sweep      *sweepTimer
	sweepArmed bool

	stats metrics.ProxyStats

	// replica is the hot-object replication controller (nil = off; every
	// guard is a single branch on the hot path, keeping stock runs
	// byte-identical).
	replica *replicator

	// tracer is the optional request tracer (nil = off; every guard is a
	// single branch on the hot path).
	tracer *obs.Tracer
}

var (
	_ sim.Node        = (*ADC)(nil)
	_ sim.Restartable = (*ADC)(nil)
)

// New builds an ADC proxy.
func New(cfg Config) (*ADC, error) {
	if !cfg.ID.IsProxy() {
		return nil, fmt.Errorf("proxy: %v is not a proxy ID", cfg.ID)
	}
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("proxy: peer set must not be empty")
	}
	cfg.Recovery = cfg.Recovery.Normalize()
	if err := cfg.Recovery.Validate(); err != nil {
		return nil, fmt.Errorf("proxy %v: %w", cfg.ID, err)
	}
	cfg.Replication = cfg.Replication.Normalize()
	if err := cfg.Replication.Validate(); err != nil {
		return nil, fmt.Errorf("proxy %v: %w", cfg.ID, err)
	}
	tables, err := core.NewTables(cfg.Tables)
	if err != nil {
		return nil, fmt.Errorf("proxy %v: %w", cfg.ID, err)
	}
	peers := make([]ids.NodeID, len(cfg.Peers))
	copy(peers, cfg.Peers)
	p := &ADC{
		id:        cfg.ID,
		peers:     peers,
		tables:    tables,
		rng:       rand.New(rand.NewSource(cfg.Seed ^ (int64(cfg.ID)+1)*0x9E3779B9)),
		pending:   make(map[ids.RequestID]pendingPass),
		recovery:  cfg.Recovery,
		tablesCfg: cfg.Tables,
		sweep:     &sweepTimer{to: cfg.ID},
	}
	if cfg.Replication.Enabled {
		p.replica = newReplicator(cfg.Replication, peers)
	}
	return p, nil
}

// ID implements sim.Node.
func (p *ADC) ID() ids.NodeID { return p.id }

// AddPeer introduces a newly joined proxy to the random-forwarding peer
// set (infrastructure growth, the paper's unused §V.1 parameter). The
// proxy needs no other state: its mapping tables learn the newcomer's
// objects through ordinary backwarding. Safe only between messages —
// i.e. from the sequential engine's driving thread.
func (p *ADC) AddPeer(id ids.NodeID) {
	for _, q := range p.peers {
		if q == id {
			return
		}
	}
	p.peers = append(p.peers, id)
	if p.replica != nil {
		for int(id) >= len(p.replica.load) {
			p.replica.load = append(p.replica.load, 0)
		}
	}
}

// Tables exposes the mapping tables for dumps, tests and metrics.
func (p *ADC) Tables() *core.Tables { return p.tables }

// SetTracer installs the request tracer (before the run starts).
func (p *ADC) SetTracer(t *obs.Tracer) { p.tracer = t }

// Stats returns a snapshot of the proxy's counters.
func (p *ADC) Stats() metrics.ProxyStats { return p.stats }

// LocalTime returns the proxy's logical clock.
func (p *ADC) LocalTime() int64 { return p.localTime }

// PendingLen returns the number of in-flight forwarded requests (tests
// assert it drains to zero — invariant 4 of DESIGN.md §10).
func (p *ADC) PendingLen() int { return len(p.pending) }

// Restart implements sim.Restartable: a fail-stop restart always loses the
// volatile request state (pending passes and the armed sweep timer died
// with the process; live chains elsewhere will surface as unexpected
// replies), and a cold restart additionally rebuilds the mapping tables
// empty. Counters and the random stream survive: they belong to the
// experiment, not the process.
func (p *ADC) Restart(loseTables bool) {
	p.pending = make(map[ids.RequestID]pendingPass)
	p.expiryQ = nil
	p.expiryHead = 0
	p.sweepArmed = false
	if p.replica != nil {
		// Controller state is volatile: hit counts, load estimates and
		// replica tracking died with the process. Table state (replica
		// sets included) follows the loseTables flag below.
		p.replica = newReplicator(p.replica.cfg, p.peers)
	}
	if loseTables {
		// The config was validated at construction, so this cannot fail.
		if t, err := core.NewTables(p.tablesCfg); err == nil {
			p.tables = t
		}
	}
}

// Handle implements sim.Node.
func (p *ADC) Handle(ctx sim.Context, m msg.Message) {
	switch t := m.(type) {
	case *msg.Request:
		p.receiveRequest(ctx, t)
	case *msg.Reply:
		p.receiveReply(ctx, t)
	case *sweepTimer:
		p.handleSweep(ctx)
	}
}

// receiveRequest is the paper's Receive_Request() (Fig. 5).
func (p *ADC) receiveRequest(ctx sim.Context, req *msg.Request) {
	p.localTime++
	p.stats.Requests++
	if p.replica != nil && p.localTime%p.replica.cfg.Window == 0 {
		p.rollWindow()
	}

	if p.tables.IsCached(req.Object) {
		// Local hit: update the entry to point at ourselves and
		// start backwarding immediately.
		p.stats.LocalHits++
		prevLoc := ids.None
		if p.replica != nil {
			p.noteHit(req.Object)
			prevLoc, _ = p.tables.ForwardLocation(req.Object)
		}
		out := p.tables.Update(req.Object, p.id, p.localTime)
		if p.tracer.Enabled(obs.KindHit) {
			e := obs.Ev(obs.KindHit, p.id)
			e.At = sim.TraceNow(ctx)
			e.Req = req.ID
			e.Obj = req.Object
			e.Loc = p.id
			e.Hops = int32(req.Hops)
			e.Arg = encodeOutcome(out)
			p.tracer.Emit(e)
		}
		p.recordOutcome(out)
		rep := sim.Resolve(ctx, req)
		rep.Resolver = p.id
		rep.Cached = true
		if p.replica != nil {
			// rep.Object, not req.Object: Resolve consumed the request.
			p.maybePush(rep.Object, prevLoc, rep)
		}
		next, _ := rep.NextBackward()
		rep.To = next
		ctx.Send(rep)
		return
	}

	// Miss: loop detection looks at the state before this arrival, then
	// Store_Backwarding registers the pass so the reply can retrace it.
	pass := p.pending[req.ID]
	looped := pass.count > 0
	atMax := req.AtMaxHops()
	req.Path = append(req.Path, p.id)
	req.Sender = p.id

	to := ids.Origin
	learned := ids.None
	reason := obs.ReasonMaxHops
	if looped || atMax {
		if looped {
			p.stats.LoopsDetected++
			reason = obs.ReasonLoop
		}
		p.stats.ForwardOrigin++
	} else {
		var viaTable bool
		to, viaTable = p.forwardAddr(req.Object)
		switch {
		case viaTable && to == ids.Origin:
			reason = obs.ReasonSelfOrigin
		case viaTable:
			reason = obs.ReasonLearned
		default:
			reason = obs.ReasonRandom
		}
		if viaTable && to != ids.Origin {
			learned = to
		}
	}

	pass.count++
	if p.recovery.Enabled {
		pass.obj = req.Object
		pass.learned = learned
		if clk, ok := ctx.(sim.Clock); ok {
			pass.expireAt = clk.VNow() + p.recovery.PendingTTL
			p.pushExpiry(ctx, req.ID, pass.expireAt)
		}
	}
	p.pending[req.ID] = pass

	req.To = to
	if p.tracer.Enabled(obs.KindForward) {
		e := obs.Ev(obs.KindForward, p.id)
		e.At = sim.TraceNow(ctx)
		e.Req = req.ID
		e.Obj = req.Object
		e.To = to
		e.Hops = int32(req.Hops)
		e.Arg = reason
		p.tracer.Emit(e)
	}
	ctx.Send(req)
}

// forwardAddr is the paper's Forward_Addr() (Fig. 6): use the learned
// location when one exists, otherwise pick a random peer (including
// ourselves). A learned location equal to our own ID is a THIS entry whose
// object is not cached here, which means this proxy is responsible and the
// unresolved query goes to the origin server (§III.3.2). viaTable reports
// whether a mapping entry directed the forward, so the recovery layer
// knows which pending passes trusted a learned location.
func (p *ADC) forwardAddr(obj ids.ObjectID) (to ids.NodeID, viaTable bool) {
	if p.replica != nil {
		return p.forwardAddrReplicated(obj)
	}
	if loc, ok := p.tables.ForwardLocation(obj); ok {
		if loc == p.id {
			p.stats.ForwardOrigin++
			return ids.Origin, true
		}
		p.stats.ForwardLearned++
		return loc, true
	}
	p.stats.ForwardRandom++
	return p.peers[p.rng.Intn(len(p.peers))], false
}

// receiveReply is the paper's Receive_Reply() (Fig. 7).
func (p *ADC) receiveReply(ctx sim.Context, rep *msg.Reply) {
	p.stats.RepliesSeen++

	// Defensive: a reply whose pending pass is gone — expired by the
	// recovery TTL, arriving at a restarted proxy, or a duplicate from a
	// retransmitted chain — is counted and must never underflow or
	// resurrect loop-detection state. It still carries real data, so the
	// table update and the backwarding forward below proceed normally
	// (routing needs only the reply's own path).
	pass, live := p.pending[rep.ID]
	if !live {
		p.stats.UnexpectedReplies++
	}

	// Data straight from the origin server: the first proxy on the
	// backwarding path claims the resolver slot.
	if rep.Resolver == ids.None {
		rep.Resolver = p.id
	}

	// Learn the agreed location; this may promote the entry through the
	// tables and into the cache (the object's data is passing by right
	// now, so caching is possible exactly here).
	learned := rep.Resolver
	out := p.tables.Update(rep.Object, rep.Resolver, p.localTime)
	p.recordOutcome(out)
	if p.replica != nil {
		p.learnReplicas(rep)
	}

	// "This focus on only one caching location is necessary to allow
	// the system to agree faster on one location" (§IV.2): the first
	// cache-holding proxy on the path claims resolver + cached.
	if !rep.Cached && p.tables.IsCached(rep.Object) {
		rep.Resolver = p.id
		rep.Cached = true
		if p.replica != nil {
			p.maybePush(rep.Object, ids.None, rep)
		}
	}

	// Retire one stored backwarding pass.
	if live {
		if pass.count > 1 {
			pass.count--
			p.pending[rep.ID] = pass
		} else {
			delete(p.pending, rep.ID)
		}
	}

	next, _ := rep.NextBackward()
	rep.To = next
	if p.tracer.Enabled(obs.KindBackward) {
		// Loc is the location Update learned into the tables (the
		// resolver as received, post origin-claim), which is what the
		// convergence analysis models as this proxy's belief.
		e := obs.Ev(obs.KindBackward, p.id)
		e.At = sim.TraceNow(ctx)
		e.Req = rep.ID
		e.Obj = rep.Object
		e.To = next
		e.Loc = learned
		e.Hops = int32(rep.Hops)
		e.Arg = encodeOutcome(out)
		p.tracer.Emit(e)
	}
	ctx.Send(rep)
}

// pushExpiry queues one expiry check and arms the sweep timer when none is
// armed. Queue order equals expireAt order, so the armed timer always
// covers the head record.
func (p *ADC) pushExpiry(ctx sim.Context, id ids.RequestID, at int64) {
	p.expiryQ = append(p.expiryQ, expiryRec{id: id, at: at})
	if !p.sweepArmed {
		if sched, ok := ctx.(sim.Scheduler); ok {
			sched.After(p.recovery.PendingTTL, p.sweep)
			p.sweepArmed = true
		}
	}
}

// handleSweep fires the armed expiry timer: retire everything due, then
// re-arm for the next queued record (if any). The sweep chain keeps the
// engine's event queue alive until all pending state has drained.
func (p *ADC) handleSweep(ctx sim.Context) {
	p.sweepArmed = false
	clk, ok := ctx.(sim.Clock)
	if !ok || !p.recovery.Enabled {
		return
	}
	now := clk.VNow()
	p.expirePending(now)
	if p.expiryHead < len(p.expiryQ) {
		if sched, isSched := ctx.(sim.Scheduler); isSched {
			d := p.expiryQ[p.expiryHead].at - now
			if d < 1 {
				d = 1
			}
			sched.After(d, p.sweep)
			p.sweepArmed = true
		}
	}
}

// expirePending retires every pending entry due at now. An entry whose
// expireAt is newer than its queued record was refreshed by a later pass —
// the later record is still queued and will judge it then. Expired entries
// surrender all passes at once (the chain is dead; partial retirement
// would leave the remainder leaking), and when the latest pass had trusted
// a learned location that the tables still hold, that mapping is demoted:
// the unanswered forward is evidence the location is stale (crashed or
// unreachable), and dropping it falls forwarding back to random selection
// so backwarding can re-converge on a live resolver.
func (p *ADC) expirePending(now int64) {
	for p.expiryHead < len(p.expiryQ) && p.expiryQ[p.expiryHead].at <= now {
		rec := p.expiryQ[p.expiryHead]
		p.popExpiry()
		pass, ok := p.pending[rec.id]
		if !ok || pass.expireAt > now {
			continue
		}
		delete(p.pending, rec.id)
		p.stats.ExpiredPending += uint64(pass.count)
		if p.tracer.Enabled(obs.KindExpire) {
			e := obs.Ev(obs.KindExpire, p.id)
			e.At = now
			e.Req = rec.id
			e.Obj = pass.obj
			e.Arg = int64(pass.count)
			p.tracer.Emit(e)
		}
		if pass.learned != ids.None && pass.learned != p.id {
			if loc, has := p.tables.ForwardLocation(pass.obj); has && loc == pass.learned {
				if p.tables.Invalidate(pass.obj) {
					p.stats.StaleInvalidated++
					if p.tracer.Enabled(obs.KindInvalidate) {
						e := obs.Ev(obs.KindInvalidate, p.id)
						e.At = now
						e.Req = rec.id
						e.Obj = pass.obj
						e.Loc = pass.learned
						p.tracer.Emit(e)
					}
				}
			}
		}
	}
}

// popExpiry advances the queue head, compacting the backing slice once
// half of it is dead so memory stays bounded without per-pop copying.
func (p *ADC) popExpiry() {
	p.expiryHead++
	if p.expiryHead >= 64 && p.expiryHead*2 >= len(p.expiryQ) {
		n := copy(p.expiryQ, p.expiryQ[p.expiryHead:])
		p.expiryQ = p.expiryQ[:n]
		p.expiryHead = 0
	}
}

// encodeOutcome packs a table-update outcome into a trace-event Arg.
func encodeOutcome(out core.Outcome) int64 {
	return obs.EncodeOutcome(int(out.From), int(out.To),
		out.CacheEvicted != nil, out.MultipleEvicted != nil, out.Dropped != nil)
}

func (p *ADC) recordOutcome(out core.Outcome) {
	if out.To == core.KindCaching && out.From != core.KindCaching {
		p.stats.CacheInsertions++
	}
	if out.CacheEvicted != nil {
		p.stats.CacheEvictions++
	}
	// Last reader of the outcome: entries the tables forgot go back to
	// the arena.
	p.tables.Recycle(out)
}
