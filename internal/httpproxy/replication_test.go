package httpproxy

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/proxy"
	"github.com/adc-sim/adc/internal/transport"
)

// replicatedFarm builds a farm with the hot-object replication controller
// on (or off) — small caches, a low push threshold and a short window so a
// brief test stream engages every controller path.
func replicatedFarm(t *testing.T, proxies int, on bool) *Farm {
	t.Helper()
	cfg := FarmConfig{
		Proxies: proxies,
		Tables:  core.Config{SingleSize: 256, MultipleSize: 128, CachingSize: 32},
		Seed:    1,
	}
	if on {
		cfg.Replication = proxy.Replication{
			Enabled:      true,
			HotThreshold: 2,
			MaxReplicas:  3,
			Window:       256,
		}
	}
	f, err := NewFarm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := f.Close(); err != nil {
			t.Errorf("farm close: %v", err)
		}
	})
	return f
}

// driveHotStream hammers a handful of head objects through rotating entry
// proxies — the farm equivalent of a steep Zipf head. Entry rotation makes
// three quarters of the arrivals at any holder come via a forwarding peer,
// which is exactly the recent requester a replica push targets.
func driveHotStream(t *testing.T, f *Farm, total, headObjects int) (hits int) {
	t.Helper()
	for i := 0; i < total; i++ {
		obj := ids.ObjectID(i%headObjects + 1)
		hit, err := f.Get(i%len(f.Proxies), obj, fmt.Sprintf("hot-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			hits++
		}
	}
	return hits
}

// TestFarmReplicationZipf is the real-network half of the replication
// claim: under a hot-headed stream the HTTP farm pushes replicas, pushed
// copies serve hits (payload integrity checked on every Get), and a stock
// farm on the identical stream keeps all replica counters at zero.
func TestFarmReplicationZipf(t *testing.T) {
	// head = 5 with 4 proxies: coprime cycles, so every head object
	// enters at every proxy (a 4/4 correlation would pin each object to
	// one entry proxy and nothing would ever forward).
	const total, head = 1200, 5

	stock := replicatedFarm(t, 4, false)
	driveHotStream(t, stock, total, head)
	for _, p := range stock.Proxies {
		s := p.Stats()
		if s.ReplicaPushes != 0 || s.ReplicaDrops != 0 || s.ReplicaHits != 0 {
			t.Fatalf("stock farm grew replica counters: %+v", s)
		}
	}

	f := replicatedFarm(t, 4, true)
	hits := driveHotStream(t, f, total, head)
	totalStats := f.TotalStats()
	if totalStats.ReplicaPushes == 0 {
		t.Error("no replica pushes under a hot-headed stream")
	}
	if totalStats.ReplicaHits == 0 {
		t.Error("pushed replicas never served a hit")
	}
	if hits == 0 {
		t.Error("hot stream produced no proxy cache hits at all")
	}
	// Multi-homing the head: more than one proxy must end up serving
	// local hits for the 4 head objects.
	serving := 0
	for _, p := range f.Proxies {
		if p.Stats().LocalHits > 0 {
			serving++
		}
	}
	if serving < 2 {
		t.Errorf("only %d proxies served local hits; replication should multi-home the head", serving)
	}
	t.Logf("replicated farm: hits=%d pushes=%d drops=%d replica hits=%d serving=%d",
		hits, totalStats.ReplicaPushes, totalStats.ReplicaDrops, totalStats.ReplicaHits, serving)
}

// TestFarmReplicationDebugVars checks that /debug/vars grows a replication
// section with live counters when the controller is on, and stays without
// one when it is off.
func TestFarmReplicationDebugVars(t *testing.T) {
	f := replicatedFarm(t, 3, true)
	driveHotStream(t, f, 600, 2)

	var sawPushes bool
	for _, p := range f.Proxies {
		status, body := getBody(t, p.URL()+"/debug/vars")
		if status != http.StatusOK {
			t.Fatalf("/debug/vars status %d", status)
		}
		var v debugVars
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
		}
		if v.Replication == nil {
			t.Fatalf("proxy %v: replication on but /debug/vars has no replication section", p.ID())
		}
		if v.Replication.Pushes != v.Stats.ReplicaPushes ||
			v.Replication.Hits != v.Stats.ReplicaHits ||
			v.Replication.Drops != v.Stats.ReplicaDrops {
			t.Errorf("proxy %v: replication section %+v disagrees with stats %+v",
				p.ID(), v.Replication, v.Stats)
		}
		if v.Replication.Pushes > 0 {
			sawPushes = true
		}
	}
	if !sawPushes {
		t.Error("no proxy reported replica pushes in /debug/vars")
	}

	stock := replicatedFarm(t, 1, false)
	_, body := getBody(t, stock.Proxies[0].URL()+"/debug/vars")
	var v debugVars
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	if v.Replication != nil {
		t.Error("stock farm /debug/vars has a replication section")
	}
}

// TestFarmDebugVarsNetwork checks the attached-transport section of
// /debug/vars: present (with the dropped counter and sorted queue depths)
// once a Network is attached, absent before and after.
func TestFarmDebugVarsNetwork(t *testing.T) {
	f := testFarm(t, 1)
	url := f.Proxies[0].URL() + "/debug/vars"

	var v debugVars
	_, body := getBody(t, url)
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	if v.Network != nil {
		t.Fatal("network section present before AttachNetwork")
	}

	nw := transport.NewNetwork()
	f.AttachNetwork(nw)
	v = debugVars{}
	_, body = getBody(t, url)
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	if v.Network == nil {
		t.Fatal("network section missing after AttachNetwork")
	}
	if v.Network.Dropped != 0 || len(v.Network.Queues) != 0 {
		t.Errorf("idle network reports dropped=%d queues=%v", v.Network.Dropped, v.Network.Queues)
	}

	f.AttachNetwork(nil)
	v = debugVars{}
	_, body = getBody(t, url)
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	if v.Network != nil {
		t.Error("network section still present after detach")
	}
}

// TestAdmissionRetryAfter pins the shed response's shape under saturation:
// every 429 must carry a Retry-After header so well-behaved clients back
// off instead of hammering a proxy that is already shedding.
func TestAdmissionRetryAfter(t *testing.T) {
	const clients = 8
	origin := newSlowOrigin(300 * time.Millisecond)
	defer origin.srv.Close()
	p := stormProxy(t, origin.srv.URL, Config{ID: 0, MaxActive: 1, MaxQueue: -1})

	var shed, badHeader atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			req, err := http.NewRequest(http.MethodGet, ObjectURL(p.URL(), ids.ObjectID(2000+c)), nil)
			if err != nil {
				t.Error(err)
				return
			}
			req.Header.Set(HeaderRequestID, "ra-"+strconv.Itoa(c))
			resp, err := sharedClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close() //nolint:errcheck // headers only
			if resp.StatusCode != http.StatusTooManyRequests {
				return
			}
			shed.Add(1)
			if ra := resp.Header.Get("Retry-After"); ra == "" {
				badHeader.Add(1)
			} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
				// RFC 9110: delay-seconds, and it must tell the client
				// to actually wait.
				badHeader.Add(1)
			}
		}(c)
	}
	wg.Wait()

	if shed.Load() == 0 {
		t.Fatal("saturation never shed a request; Retry-After untested")
	}
	if badHeader.Load() != 0 {
		t.Errorf("%d of %d shed responses had a missing or invalid Retry-After", badHeader.Load(), shed.Load())
	}
}
