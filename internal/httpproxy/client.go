package httpproxy

import (
	"net"
	"net/http"
	"time"
)

// The farm runs over real sockets, so its throughput ceiling is set by how
// the HTTP client side treats connections. The stock http.DefaultTransport
// caps idle connections at MaxIdleConnsPerHost=2 — under ADC's learned
// single-location routing every proxy funnels its misses into the *same*
// resolver host, so all but two of those connections are torn down after
// each response and the farm pays a fresh TCP handshake (plus TIME_WAIT
// churn) on nearly every forward. One tuned, shared Transport fixes the
// fan-in: generous idle pools sized for a fleet where any host may become
// the hot resolver, keep-alives on, and granular dial/header timeouts in
// place of the old one-size 30 s client timeout (which also killed slow
// but live streaming bodies).

// Timeout defaults of the shared transport. Dial and header timeouts are
// deliberately granular: a dead peer fails fast at dial time, while a live
// peer serving a large body is never cut off mid-stream.
const (
	dialTimeout       = 2 * time.Second
	headerTimeout     = 10 * time.Second
	idleConnTimeout   = 90 * time.Second
	keepAlivePeriod   = 30 * time.Second
	maxIdlePerHost    = 512
	maxIdleConnsTotal = 2048
)

// NewTransport returns the tuned http.Transport used by everything in this
// package (proxy upstream fetches, the farm's client side) and by
// cmd/adcload. Callers that need isolation (e.g. separate metrics per
// client) may construct their own; sharing one is the fast path.
func NewTransport() *http.Transport {
	return &http.Transport{
		DialContext: (&net.Dialer{
			Timeout:   dialTimeout,
			KeepAlive: keepAlivePeriod,
		}).DialContext,
		MaxIdleConns:          maxIdleConnsTotal,
		MaxIdleConnsPerHost:   maxIdlePerHost,
		IdleConnTimeout:       idleConnTimeout,
		ResponseHeaderTimeout: headerTimeout,
		// Payloads are small binary bodies; compression would only add
		// CPU on the hot path.
		DisableCompression: true,
		ForceAttemptHTTP2:  false,
	}
}

// NewClient wraps NewTransport in an http.Client. There is deliberately no
// overall client timeout: dial and header timeouts above bound every
// stalled phase individually, so a healthy long transfer is never aborted.
func NewClient() *http.Client {
	return &http.Client{Transport: NewTransport()}
}

// sharedClient is the package-default pooled client. Every proxy in a
// process and the farm's own client side reuse it, so settings cannot
// drift between the two (they used to be two hardcoded 30 s clients) and
// connections to a hot resolver are pooled process-wide.
var sharedClient = NewClient()
