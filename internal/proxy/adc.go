// Package proxy implements the ADC proxy agent: the event handlers of the
// paper's §IV (Receive_Request, Fig. 5; Forward_Addr, Fig. 6;
// Receive_Reply, Fig. 7) on top of the mapping tables of internal/core.
//
// Each proxy is an autonomous agent: it owns its tables, its pending-request
// set, its random generator and its logical clock, and interacts with the
// rest of the system exclusively through messages. "The algorithm for ADC
// is implemented in every running proxy with an equal setting without any
// further modifications or fine-tuning" (§IV).
package proxy

import (
	"fmt"
	"math/rand"

	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/metrics"
	"github.com/adc-sim/adc/internal/msg"
	"github.com/adc-sim/adc/internal/sim"
)

// Config assembles one ADC proxy.
type Config struct {
	// ID is the proxy's node ID (0-based).
	ID ids.NodeID
	// Peers lists every proxy in the system including this one; random
	// forwarding selects "over the set of known proxies including
	// itself" (Fig. 6).
	Peers []ids.NodeID
	// Tables sizes the three mapping tables.
	Tables core.Config
	// Seed derives the proxy's private random stream. Two proxies in
	// one cluster receive different streams (the cluster XORs the ID in).
	Seed int64
}

// ADC is one Adaptive Distributed Caching proxy agent.
type ADC struct {
	id     ids.NodeID
	peers  []ids.NodeID
	tables *core.Tables
	rng    *rand.Rand

	// localTime is "the counter for the received requests [which]
	// represents the local clock of the proxy" (§IV.1).
	localTime int64

	// pending counts, per in-flight request ID, how many times this
	// proxy has forwarded it and not yet seen the reply pass back. A
	// request arriving while pending is a loop (§III.1). Counts (not
	// booleans) handle self-forwarding, where the same proxy legally
	// appears twice on the path.
	pending map[ids.RequestID]int

	stats metrics.ProxyStats
}

var _ sim.Node = (*ADC)(nil)

// New builds an ADC proxy.
func New(cfg Config) (*ADC, error) {
	if !cfg.ID.IsProxy() {
		return nil, fmt.Errorf("proxy: %v is not a proxy ID", cfg.ID)
	}
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("proxy: peer set must not be empty")
	}
	tables, err := core.NewTables(cfg.Tables)
	if err != nil {
		return nil, fmt.Errorf("proxy %v: %w", cfg.ID, err)
	}
	peers := make([]ids.NodeID, len(cfg.Peers))
	copy(peers, cfg.Peers)
	return &ADC{
		id:      cfg.ID,
		peers:   peers,
		tables:  tables,
		rng:     rand.New(rand.NewSource(cfg.Seed ^ (int64(cfg.ID)+1)*0x9E3779B9)),
		pending: make(map[ids.RequestID]int),
	}, nil
}

// ID implements sim.Node.
func (p *ADC) ID() ids.NodeID { return p.id }

// AddPeer introduces a newly joined proxy to the random-forwarding peer
// set (infrastructure growth, the paper's unused §V.1 parameter). The
// proxy needs no other state: its mapping tables learn the newcomer's
// objects through ordinary backwarding. Safe only between messages —
// i.e. from the sequential engine's driving thread.
func (p *ADC) AddPeer(id ids.NodeID) {
	for _, q := range p.peers {
		if q == id {
			return
		}
	}
	p.peers = append(p.peers, id)
}

// Tables exposes the mapping tables for dumps, tests and metrics.
func (p *ADC) Tables() *core.Tables { return p.tables }

// Stats returns a snapshot of the proxy's counters.
func (p *ADC) Stats() metrics.ProxyStats { return p.stats }

// LocalTime returns the proxy's logical clock.
func (p *ADC) LocalTime() int64 { return p.localTime }

// PendingLen returns the number of in-flight forwarded requests (tests
// assert it drains to zero — invariant 4 of DESIGN.md §9).
func (p *ADC) PendingLen() int { return len(p.pending) }

// Handle implements sim.Node.
func (p *ADC) Handle(ctx sim.Context, m msg.Message) {
	switch t := m.(type) {
	case *msg.Request:
		p.receiveRequest(ctx, t)
	case *msg.Reply:
		p.receiveReply(ctx, t)
	}
}

// receiveRequest is the paper's Receive_Request() (Fig. 5).
func (p *ADC) receiveRequest(ctx sim.Context, req *msg.Request) {
	p.localTime++
	p.stats.Requests++

	if p.tables.IsCached(req.Object) {
		// Local hit: update the entry to point at ourselves and
		// start backwarding immediately.
		p.stats.LocalHits++
		p.recordOutcome(p.tables.Update(req.Object, p.id, p.localTime))
		rep := sim.Resolve(ctx, req)
		rep.Resolver = p.id
		rep.Cached = true
		next, _ := rep.NextBackward()
		rep.To = next
		ctx.Send(rep)
		return
	}

	// Miss: loop detection looks at the state before this arrival, then
	// Store_Backwarding registers the pass so the reply can retrace it.
	looped := p.pending[req.ID] > 0
	atMax := req.AtMaxHops()
	p.pending[req.ID]++
	req.Path = append(req.Path, p.id)
	req.Sender = p.id

	if looped || atMax {
		if looped {
			p.stats.LoopsDetected++
		}
		p.stats.ForwardOrigin++
		req.To = ids.Origin
		ctx.Send(req)
		return
	}

	req.To = p.forwardAddr(req.Object)
	ctx.Send(req)
}

// forwardAddr is the paper's Forward_Addr() (Fig. 6): use the learned
// location when one exists, otherwise pick a random peer (including
// ourselves). A learned location equal to our own ID is a THIS entry whose
// object is not cached here, which means this proxy is responsible and the
// unresolved query goes to the origin server (§III.3.2).
func (p *ADC) forwardAddr(obj ids.ObjectID) ids.NodeID {
	if loc, ok := p.tables.ForwardLocation(obj); ok {
		if loc == p.id {
			p.stats.ForwardOrigin++
			return ids.Origin
		}
		p.stats.ForwardLearned++
		return loc
	}
	p.stats.ForwardRandom++
	return p.peers[p.rng.Intn(len(p.peers))]
}

// receiveReply is the paper's Receive_Reply() (Fig. 7).
func (p *ADC) receiveReply(ctx sim.Context, rep *msg.Reply) {
	p.stats.RepliesSeen++

	// Data straight from the origin server: the first proxy on the
	// backwarding path claims the resolver slot.
	if rep.Resolver == ids.None {
		rep.Resolver = p.id
	}

	// Learn the agreed location; this may promote the entry through the
	// tables and into the cache (the object's data is passing by right
	// now, so caching is possible exactly here).
	p.recordOutcome(p.tables.Update(rep.Object, rep.Resolver, p.localTime))

	// "This focus on only one caching location is necessary to allow
	// the system to agree faster on one location" (§IV.2): the first
	// cache-holding proxy on the path claims resolver + cached.
	if !rep.Cached && p.tables.IsCached(rep.Object) {
		rep.Resolver = p.id
		rep.Cached = true
	}

	// Retire one stored backwarding pass.
	if n := p.pending[rep.ID]; n > 1 {
		p.pending[rep.ID] = n - 1
	} else {
		delete(p.pending, rep.ID)
	}

	next, _ := rep.NextBackward()
	rep.To = next
	ctx.Send(rep)
}

func (p *ADC) recordOutcome(out core.Outcome) {
	if out.To == core.KindCaching && out.From != core.KindCaching {
		p.stats.CacheInsertions++
	}
	if out.CacheEvicted != nil {
		p.stats.CacheEvictions++
	}
	// Last reader of the outcome: entries the tables forgot go back to
	// the arena.
	p.tables.Recycle(out)
}
