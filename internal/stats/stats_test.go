package stats

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestOnlineBasics(t *testing.T) {
	var o Online
	if o.N() != 0 || o.Mean() != 0 || o.Variance() != 0 {
		t.Error("zero-value Online must report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		o.Add(x)
	}
	if o.N() != 8 {
		t.Errorf("N = %d", o.N())
	}
	if !almost(o.Mean(), 5) {
		t.Errorf("Mean = %v, want 5", o.Mean())
	}
	// Sample variance of the classic dataset is 32/7.
	if !almost(o.Variance(), 32.0/7.0) {
		t.Errorf("Variance = %v, want %v", o.Variance(), 32.0/7.0)
	}
	if o.Min() != 2 || o.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", o.Min(), o.Max())
	}
}

func TestOnlineMergeMatchesSequential(t *testing.T) {
	// Bound the magnitudes: with values near MaxFloat64 both the merged
	// and the sequential computation lose all precision and comparing
	// them is meaningless.
	sanitize := func(x float64) float64 {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 1
		}
		return math.Mod(x, 1e6)
	}
	prop := func(a, b []float64) bool {
		var whole, left, right Online
		for _, x := range a {
			whole.Add(sanitize(x))
			left.Add(sanitize(x))
		}
		for _, x := range b {
			whole.Add(sanitize(x))
			right.Add(sanitize(x))
		}
		left.Merge(&right)
		if whole.N() != left.N() {
			return false
		}
		if whole.N() == 0 {
			return true
		}
		relEq := func(a, b float64) bool {
			scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
			return math.Abs(a-b) <= 1e-9*scale
		}
		return relEq(whole.Mean(), left.Mean()) &&
			relEq(whole.Variance(), left.Variance())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMeanAndStdDev(t *testing.T) {
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Error("Mean(nil) must return ErrEmpty")
	}
	m, err := Mean([]float64{1, 2, 3})
	if err != nil || !almost(m, 2) {
		t.Errorf("Mean = %v, %v", m, err)
	}
	if _, err := StdDev([]float64{1}); err == nil {
		t.Error("StdDev of one sample must fail")
	}
	sd, err := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil || !almost(sd, math.Sqrt(32.0/7.0)) {
		t.Errorf("StdDev = %v, %v", sd, err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15}, {100, 50}, {50, 35}, {25, 20},
	}
	for _, tc := range cases {
		got, err := Percentile(xs, tc.p)
		if err != nil || !almost(got, tc.want) {
			t.Errorf("Percentile(%v) = %v, %v; want %v", tc.p, got, err, tc.want)
		}
	}
	if _, err := Percentile(nil, 50); !errors.Is(err, ErrEmpty) {
		t.Error("empty percentile must return ErrEmpty")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("out-of-range percentile must fail")
	}
	// Input must not be mutated.
	if xs[0] != 15 || xs[4] != 50 {
		t.Error("Percentile mutated its input")
	}
}

func TestMovingAverageExact(t *testing.T) {
	m := NewMovingAverage(3)
	if m.Value() != 0 || m.N() != 0 {
		t.Error("empty window must report 0")
	}
	m.Add(3)
	if !almost(m.Value(), 3) {
		t.Errorf("Value = %v", m.Value())
	}
	m.Add(6)
	m.Add(9)
	if !almost(m.Value(), 6) || m.N() != 3 {
		t.Errorf("Value = %v, N = %d", m.Value(), m.N())
	}
	m.Add(12) // 3 slides out
	if !almost(m.Value(), 9) || m.N() != 3 {
		t.Errorf("Value after slide = %v", m.Value())
	}
	m.Reset()
	if m.Value() != 0 || m.N() != 0 {
		t.Error("Reset must empty the window")
	}
}

func TestMovingAverageMatchesNaive(t *testing.T) {
	prop := func(xs []float64, sizeSeed uint8) bool {
		size := int(sizeSeed%9) + 1
		m := NewMovingAverage(size)
		for i, x := range xs {
			// Bound the values to keep the naive sum stable.
			x = math.Mod(x, 1000)
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 1
			}
			m.Add(x)
			lo := i + 1 - size
			if lo < 0 {
				lo = 0
			}
			var sum float64
			for j := lo; j <= i; j++ {
				v := math.Mod(xs[j], 1000)
				if math.IsNaN(v) || math.IsInf(v, 0) {
					v = 1
				}
				sum += v
			}
			naive := sum / float64(i+1-lo)
			if math.Abs(m.Value()-naive) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMovingAveragePanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMovingAverage(0) must panic")
		}
	}()
	NewMovingAverage(0)
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(10, 10) // buckets [0,10) … [90,100) + overflow
	for v := 0; v < 100; v++ {
		h.Add(v)
	}
	// Uniform over [0,100): the median must land near 50, p90 near 90.
	if q := h.Quantile(0.5); math.Abs(q-50) > 10 {
		t.Errorf("median = %v, want ≈50", q)
	}
	if q := h.Quantile(0.9); math.Abs(q-90) > 10 {
		t.Errorf("p90 = %v, want ≈90", q)
	}
	if q := h.Quantile(0); q != 0 {
		t.Errorf("q0 = %v", q)
	}
	// Out-of-range and empty cases.
	if h.Quantile(-1) != 0 || h.Quantile(2) != 0 {
		t.Error("out-of-range quantiles must return 0")
	}
	var empty Histogram
	if (&empty).Quantile(0.5) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
	// Overflow bucket reports its lower bound.
	ho := NewHistogram(2, 10)
	ho.Add(1000)
	if q := ho.Quantile(1); q != 20 {
		t.Errorf("overflow quantile = %v, want 20", q)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(4, 2) // buckets [0,2) [2,4) [4,6) [6,8) overflow
	for _, v := range []int{0, 1, 2, 5, 7, 100, -3} {
		h.Add(v)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Count(0) != 3 { // 0, 1, -3
		t.Errorf("bucket 0 = %d, want 3", h.Count(0))
	}
	if h.Count(1) != 1 || h.Count(2) != 1 || h.Count(3) != 1 {
		t.Errorf("buckets = %v", h.Buckets())
	}
	if h.Count(4) != 1 { // overflow
		t.Errorf("overflow = %d, want 1", h.Count(4))
	}
	s := h.String()
	if !strings.Contains(s, ">=8") {
		t.Errorf("String missing overflow label:\n%s", s)
	}
	if NewHistogram(2, 1).String() != "(empty histogram)" {
		t.Error("empty histogram string wrong")
	}
}

func TestHistogramMergeEdgeCases(t *testing.T) {
	// Merging an empty histogram is a no-op.
	h := NewHistogram(4, 10)
	for _, v := range []int{5, 15, 100} {
		h.Add(v)
	}
	before := h.Buckets()
	h.Merge(NewHistogram(4, 10))
	if h.Total() != 3 || !reflect.DeepEqual(h.Buckets(), before) {
		t.Errorf("merging an empty histogram changed counts: %v -> %v", before, h.Buckets())
	}

	// Merging into an empty histogram copies the source exactly.
	dst := NewHistogram(4, 10)
	dst.Merge(h)
	if !reflect.DeepEqual(dst.Buckets(), h.Buckets()) || dst.Total() != h.Total() {
		t.Errorf("merge into empty: got %v total %d, want %v total %d",
			dst.Buckets(), dst.Total(), h.Buckets(), h.Total())
	}
	// And quantiles agree with the source afterwards.
	if dst.Quantile(0.5) != h.Quantile(0.5) {
		t.Errorf("median diverged after merge: %v vs %v", dst.Quantile(0.5), h.Quantile(0.5))
	}

	// Single-sample merge lands in the right bucket, including overflow.
	one := NewHistogram(4, 10)
	one.Add(39)
	sum := NewHistogram(4, 10)
	sum.Merge(one)
	if sum.Total() != 1 || sum.Count(3) != 1 {
		t.Errorf("single-sample merge: %v total %d", sum.Buckets(), sum.Total())
	}
	over := NewHistogram(4, 10)
	over.Add(1 << 20)
	sum.Merge(over)
	if sum.Count(4) != 1 {
		t.Errorf("overflow sample lost in merge: %v", sum.Buckets())
	}

	// Merge-into-self doubles every bucket and the total.
	self := NewHistogram(4, 10)
	for _, v := range []int{-1, 0, 12, 25, 999} {
		self.Add(v)
	}
	want := self.Buckets()
	for i := range want {
		want[i] *= 2
	}
	self.Merge(self)
	if self.Total() != 10 || !reflect.DeepEqual(self.Buckets(), want) {
		t.Errorf("merge-into-self: got %v total %d, want %v total 10",
			self.Buckets(), self.Total(), want)
	}
}

func TestHistogramMergeLayoutMismatch(t *testing.T) {
	for _, other := range []*Histogram{NewHistogram(4, 5), NewHistogram(8, 10)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("merging mismatched layouts must panic")
				}
			}()
			NewHistogram(4, 10).Merge(other)
		}()
	}
}

// TestHistogramSumAndCountBelow covers the Prometheus-exposition helpers:
// Sum tracks positive observations, CountBelow is exact at bucket-aligned
// edges and excludes the overflow bucket.
func TestHistogramSumAndCountBelow(t *testing.T) {
	h := NewHistogram(4, 10) // buckets [0,10) [10,20) [20,30) [30,40) + overflow
	for _, v := range []int{-5, 0, 5, 15, 25, 35, 1000} {
		h.Add(v)
	}
	if got, want := h.Sum(), uint64(5+15+25+35+1000); got != want {
		t.Errorf("Sum = %d, want %d", got, want)
	}
	if got := h.CountBelow(0); got != 0 {
		t.Errorf("CountBelow(0) = %d, want 0", got)
	}
	if got := h.CountBelow(10); got != 3 { // -5, 0, 5
		t.Errorf("CountBelow(10) = %d, want 3", got)
	}
	if got := h.CountBelow(20); got != 4 {
		t.Errorf("CountBelow(20) = %d, want 4", got)
	}
	// Edge beyond the last regular bucket: all but the overflow.
	if got := h.CountBelow(40); got != 6 {
		t.Errorf("CountBelow(40) = %d, want 6", got)
	}
	if got := h.CountBelow(1 << 30); got != 6 {
		t.Errorf("CountBelow(huge) = %d, want 6 (overflow excluded)", got)
	}
	// Unaligned edge rounds down to whole buckets.
	if got := h.CountBelow(19); got != 3 {
		t.Errorf("CountBelow(19) = %d, want 3", got)
	}

	// Merge folds sums too.
	h2 := NewHistogram(4, 10)
	h2.Add(7)
	h2.Merge(h)
	if got, want := h2.Sum(), uint64(7+5+15+25+35+1000); got != want {
		t.Errorf("merged Sum = %d, want %d", got, want)
	}
}
