package httpproxy

import (
	"errors"
	"sync"
	"time"

	"github.com/adc-sim/adc/internal/ids"
)

// Per-peer circuit breakers on the upstream fetch path. Health probing
// bounds how long a dead peer stays in the routing tables, but between the
// failure and its detection every forward to that peer still burns a dial
// timeout. The breaker closes that window: after BreakerThreshold
// consecutive connection failures to one destination, further fetches to it
// fail immediately (no socket, no timeout) until a cooldown passes; then a
// single trial request probes the destination (half-open), and its outcome
// closes or reopens the circuit. Breakers key on the destination proxy, not
// the object — it is the peer that is dead, not the data.
//
// The origin has no breaker: it is the fallback of last resort, and
// failing fast toward a destination with no alternative only converts slow
// errors into fast ones.

// Breaker defaults; FaultTolerance fields override.
const (
	defaultBreakerThreshold = 5
	defaultBreakerCooldown  = time.Second
)

// errBreakerOpen is the immediate failure an open breaker returns.
var errBreakerOpen = errors.New("httpproxy: circuit breaker open")

// breakerState is the classic three-state machine.
type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is one destination's circuit.
type breaker struct {
	state    breakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the circuit opened
	trial    bool      // half-open: a trial request is in flight
}

// breakerGroup holds one breaker per destination proxy.
type breakerGroup struct {
	threshold int
	cooldown  time.Duration

	mu sync.Mutex
	m  map[ids.NodeID]*breaker
}

// newBreakerGroup builds a group; threshold < 0 disables breakers (nil
// group — every allow passes).
func newBreakerGroup(threshold int, cooldown time.Duration) *breakerGroup {
	if threshold < 0 {
		return nil
	}
	if threshold == 0 {
		threshold = defaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = defaultBreakerCooldown
	}
	return &breakerGroup{threshold: threshold, cooldown: cooldown, m: make(map[ids.NodeID]*breaker)}
}

// allow reports whether a fetch to dest may proceed. In half-open exactly
// one caller gets through as the trial; everyone else is denied until the
// trial reports.
func (g *breakerGroup) allow(dest ids.NodeID) bool {
	if g == nil {
		return true
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	b, ok := g.m[dest]
	if !ok {
		return true
	}
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(b.openedAt) < g.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.trial = true
		return true
	default: // half-open
		if b.trial {
			return false
		}
		b.trial = true
		return true
	}
}

// report feeds a fetch outcome (success = the connection worked) back into
// dest's circuit.
func (g *breakerGroup) report(dest ids.NodeID, success bool) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	b, ok := g.m[dest]
	if !ok {
		if success {
			return
		}
		b = &breaker{}
		g.m[dest] = b
	}
	switch b.state {
	case breakerClosed:
		if success {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= g.threshold {
			b.state = breakerOpen
			b.openedAt = time.Now()
		}
	case breakerOpen:
		// A late result from a fetch that started before the circuit
		// opened; the cooldown clock is authoritative, ignore it.
	case breakerHalfOpen:
		b.trial = false
		if success {
			b.state = breakerClosed
			b.fails = 0
			return
		}
		b.state = breakerOpen
		b.openedAt = time.Now()
	}
}

// snapshot returns the open/half-open destinations for /debug/vars.
func (g *breakerGroup) snapshot() []BreakerVar {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []BreakerVar
	for dest, b := range g.m {
		if b.state == breakerClosed {
			continue
		}
		st := "open"
		if b.state == breakerHalfOpen {
			st = "half-open"
		}
		out = append(out, BreakerVar{Peer: dest.String(), State: st})
	}
	// Sorted for stable JSON (map iteration order is random).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Peer < out[j-1].Peer; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// BreakerVar is one tripped destination in /debug/vars' breaker section.
type BreakerVar struct {
	Peer  string `json:"peer"`
	State string `json:"state"`
}
