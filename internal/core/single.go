package core

import "github.com/adc-sim/adc/internal/ids"

// SingleTable is the paper's single-table (§III.3.1): a bounded LRU list
// that "simply keeps track of the current flow of requests". New and
// re-inserted entries go on top; when the table is full the bottom entry
// drops out.
//
// Entries link through their intrusive prev/next fields, so insertion and
// drop-out allocate nothing. The table keeps no object index: hot-path
// membership is resolved by the owning Tables' unified directory (one map
// probe shared with the ordered tables) followed by an O(1) RemoveEntry.
// The by-object methods here search element-wise, exactly the behaviour
// the paper's own implementation "requires … within the list" (§V.3.3);
// they serve the Fig. 15 ablation path and direct unit tests.
type SingleTable struct {
	capacity int
	// head/tail sentinels; head.next is the top (most recent).
	head, tail Entry
	size       int
	// scan records that the paper-faithful linear-search mode was
	// requested. Search is element-wise either way now that the index
	// map lives in Tables; the flag is kept so dumps and tests can
	// report the configured mode.
	scan bool
}

// NewSingleTable returns an empty single-table with the given capacity.
// scan selects the paper-faithful linear-search mode, which also disables
// the owning Tables' directory so every probe is element-wise (Fig. 15).
// Capacity must be positive; the constructor in Tables validates
// configuration.
func NewSingleTable(capacity int, scan bool) *SingleTable {
	t := &SingleTable{capacity: capacity, scan: scan}
	t.head.next = &t.tail
	t.tail.prev = &t.head
	return t
}

// Len returns the number of stored entries.
func (t *SingleTable) Len() int { return t.size }

// Cap returns the configured capacity.
func (t *SingleTable) Cap() int { return t.capacity }

// Contains reports whether obj has an entry.
func (t *SingleTable) Contains(obj ids.ObjectID) bool {
	return t.find(obj) != nil
}

// Get returns the entry for obj without removing it, or nil. It does not
// touch LRU order: in the paper only (re-)insertion moves an entry to the
// top; Forward_Addr lookups leave the order untouched.
func (t *SingleTable) Get(obj ids.ObjectID) *Entry {
	return t.find(obj)
}

// Remove takes the entry for obj out of the table, returning nil if absent.
func (t *SingleTable) Remove(obj ids.ObjectID) *Entry {
	e := t.find(obj)
	if e == nil {
		return nil
	}
	t.unlink(e)
	return e
}

// RemoveEntry unlinks a known-present entry in O(1).
func (t *SingleTable) RemoveEntry(e *Entry) { t.unlink(e) }

// InsertTop places e on top of the table (the paper's InsertOnTop). If the
// table is full, the bottom entry drops out and is returned; otherwise the
// return is nil. The caller must ensure e's object is not already present.
func (t *SingleTable) InsertTop(e *Entry) (dropped *Entry) {
	if t.size >= t.capacity {
		dropped = t.tail.prev
		t.unlink(dropped)
	}
	e.prev = &t.head
	e.next = t.head.next
	t.head.next.prev = e
	t.head.next = e
	t.size++
	return dropped
}

// Each calls fn for every entry from top (most recent) to bottom until fn
// returns false. It allocates nothing; the entries must not be mutated or
// reinserted during the walk.
func (t *SingleTable) Each(fn func(*Entry) bool) {
	for e := t.head.next; e != &t.tail; e = e.next {
		if !fn(e) {
			return
		}
	}
}

// Entries returns the entries from top (most recent) to bottom.
func (t *SingleTable) Entries() []*Entry {
	out := make([]*Entry, 0, t.size)
	for e := t.head.next; e != &t.tail; e = e.next {
		out = append(out, e)
	}
	return out
}

func (t *SingleTable) find(obj ids.ObjectID) *Entry {
	for e := t.head.next; e != &t.tail; e = e.next {
		if e.Object == obj {
			return e
		}
	}
	return nil
}

func (t *SingleTable) unlink(e *Entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
	t.size--
}
