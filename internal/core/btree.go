package core

import (
	"sort"

	"github.com/adc-sim/adc/internal/ids"
)

// btreeTable is the default ordered-table backend: a bounded two-level
// B-tree over (Key, Object) — a slice of small sorted blocks. Finding a
// block is a binary search over the block maxima, finding the position
// inside a block a second binary search; inserts and deletes memmove at
// most one block (≤ btreeMaxBlock pointers) instead of the whole table, so
// the reference 20k-entry tables (§V.2) never pay the sorted slice's O(n)
// shifting cost. This is the "more adapted data structure [that] should
// provide speed-ups" the paper calls for in §V.3.3.
//
// The structure is purely comparison-based over the same total order as
// every other backend, so promotion and demotion decisions — and with them
// all experiment outputs — are identical to the paper's sorted slice
// (asserted by the cross-backend equivalence tests and the cluster
// determinism test).
type btreeTable struct {
	capacity int
	// blocks hold the entries: each block is sorted ascending by
	// (Key, Object), non-empty, and every entry of block i orders before
	// every entry of block i+1.
	blocks [][]*Entry
	size   int
	// freeBlocks recycles split/merged block arrays so steady-state
	// churn allocates nothing.
	freeBlocks [][]*Entry
}

// btreeMaxBlock caps a block's length; blocks split in half when they
// exceed it. 128 entries = 1 KB of pointers, two cache-friendly memmove
// targets after a split.
const btreeMaxBlock = 128

var _ Ordered = (*btreeTable)(nil)

func newBTreeTable(capacity int) *btreeTable {
	return &btreeTable{capacity: capacity}
}

func (t *btreeTable) Len() int { return t.size }
func (t *btreeTable) Cap() int { return t.capacity }

// findBlock returns the index of the only block that can contain an entry
// ordering as e: the first block whose last entry is not less than e.
// Returns len(blocks) when e orders after everything stored.
func (t *btreeTable) findBlock(e *Entry) int {
	return sort.Search(len(t.blocks), func(i int) bool {
		blk := t.blocks[i]
		return !less(blk[len(blk)-1], e)
	})
}

func (t *btreeTable) Contains(obj ids.ObjectID) bool { return t.Get(obj) != nil }

// Get searches by object. The key is unknown, so this is a linear walk —
// legacy/test path only; the hot path resolves membership through the
// Tables directory.
func (t *btreeTable) Get(obj ids.ObjectID) *Entry {
	for _, blk := range t.blocks {
		for _, e := range blk {
			if e.Object == obj {
				return e
			}
		}
	}
	return nil
}

func (t *btreeTable) Remove(obj ids.ObjectID) *Entry {
	for bi, blk := range t.blocks {
		for i, e := range blk {
			if e.Object == obj {
				t.removeAt(bi, i)
				return e
			}
		}
	}
	return nil
}

func (t *btreeTable) RemoveEntry(e *Entry) {
	bi := t.findBlock(e)
	// e is present, so bi is in range and its block contains e.
	blk := t.blocks[bi]
	i := sort.Search(len(blk), func(i int) bool { return !less(blk[i], e) })
	t.removeAt(bi, i)
}

// removeAt deletes entry i of block bi, dropping the block when it empties.
func (t *btreeTable) removeAt(bi, i int) {
	blk := t.blocks[bi]
	copy(blk[i:], blk[i+1:])
	blk[len(blk)-1] = nil
	blk = blk[:len(blk)-1]
	if len(blk) == 0 {
		t.freeBlocks = append(t.freeBlocks, blk[:0])
		copy(t.blocks[bi:], t.blocks[bi+1:])
		t.blocks[len(t.blocks)-1] = nil
		t.blocks = t.blocks[:len(t.blocks)-1]
	} else {
		t.blocks[bi] = blk
	}
	t.size--
}

// newBlock returns an empty block with btreeMaxBlock+1 capacity (one slot
// of slack so a block can overflow momentarily before splitting).
func (t *btreeTable) newBlock() []*Entry {
	if n := len(t.freeBlocks); n > 0 {
		blk := t.freeBlocks[n-1]
		t.freeBlocks[n-1] = nil
		t.freeBlocks = t.freeBlocks[:n-1]
		return blk
	}
	return make([]*Entry, 0, btreeMaxBlock+1)
}

func (t *btreeTable) Insert(e *Entry) *Entry {
	if t.capacity == 0 {
		return e
	}
	if len(t.blocks) == 0 {
		blk := append(t.newBlock(), e)
		t.blocks = append(t.blocks, blk)
		t.size++
		return t.evictOverflow()
	}
	bi := t.findBlock(e)
	if bi == len(t.blocks) {
		bi-- // orders after everything: append to the last block
	}
	blk := t.blocks[bi]
	i := sort.Search(len(blk), func(i int) bool { return !less(blk[i], e) })
	blk = append(blk, nil)
	copy(blk[i+1:], blk[i:])
	blk[i] = e
	t.blocks[bi] = blk
	t.size++
	if len(blk) > btreeMaxBlock {
		t.splitBlock(bi)
	}
	return t.evictOverflow()
}

// splitBlock halves block bi into two blocks.
func (t *btreeTable) splitBlock(bi int) {
	blk := t.blocks[bi]
	mid := len(blk) / 2
	right := append(t.newBlock(), blk[mid:]...)
	for i := mid; i < len(blk); i++ {
		blk[i] = nil
	}
	t.blocks[bi] = blk[:mid]
	t.blocks = append(t.blocks, nil)
	copy(t.blocks[bi+2:], t.blocks[bi+1:])
	t.blocks[bi+1] = right
}

// evictOverflow enforces the capacity bound after an insert.
func (t *btreeTable) evictOverflow() *Entry {
	if t.size > t.capacity {
		return t.RemoveWorst()
	}
	return nil
}

func (t *btreeTable) RemoveWorst() *Entry {
	if t.size == 0 {
		return nil
	}
	bi := len(t.blocks) - 1
	blk := t.blocks[bi]
	e := blk[len(blk)-1]
	t.removeAt(bi, len(blk)-1)
	return e
}

func (t *btreeTable) WorstKey() (int64, bool) {
	if t.size == 0 {
		return 0, false
	}
	blk := t.blocks[len(t.blocks)-1]
	return blk[len(blk)-1].Key(), true
}

func (t *btreeTable) Each(fn func(*Entry) bool) {
	for _, blk := range t.blocks {
		for _, e := range blk {
			if !fn(e) {
				return
			}
		}
	}
}

func (t *btreeTable) Entries() []*Entry {
	out := make([]*Entry, 0, t.size)
	for _, blk := range t.blocks {
		out = append(out, blk...)
	}
	return out
}
