package metrics

// ProxyStats counts the per-proxy events the cluster report aggregates:
// how many requests each agent saw, how often its own cache answered, and
// how its forwarding decisions were made. These feed the load-balance checks
// in the integration tests (self-organization should spread load roughly
// evenly, §I).
type ProxyStats struct {
	// Requests is the number of requests the proxy received.
	Requests uint64

	// LocalHits is the number of requests answered from the local cache.
	LocalHits uint64

	// ForwardLearned counts forwards that used a mapping-table entry.
	ForwardLearned uint64

	// ForwardRandom counts forwards that fell back to random selection.
	ForwardRandom uint64

	// ForwardOrigin counts forwards to the origin server (loops, hop
	// bound, or THIS-entries whose object is not cached locally).
	ForwardOrigin uint64

	// LoopsDetected counts requests that arrived while already pending.
	LoopsDetected uint64

	// RepliesSeen counts backwarding replies that passed through.
	RepliesSeen uint64

	// CacheInsertions counts promotions into the caching table.
	CacheInsertions uint64

	// CacheEvictions counts demotions out of the caching table.
	CacheEvictions uint64

	// ExpiredPending counts loop-detection pending passes retired by the
	// recovery TTL because their reply never came back (fault-injected
	// runs with recovery enabled only).
	ExpiredPending uint64

	// StaleInvalidated counts mapping entries demoted because a forward
	// to their learned location went unanswered past the pending TTL —
	// the crash-aware fallback to random forwarding.
	StaleInvalidated uint64

	// UnexpectedReplies counts replies whose request ID had no live
	// pending entry (expired, or a duplicate from a retransmitted
	// chain); they are forwarded but never touch loop-detection state.
	UnexpectedReplies uint64

	// Shed counts entry requests rejected with 429 by admission
	// control because the proxy's bounded queue was full (HTTP farm).
	Shed uint64

	// CoalescedMisses counts entry misses that shared a concurrent
	// in-flight upstream fetch instead of launching their own
	// (singleflight on the HTTP farm's miss path).
	CoalescedMisses uint64

	// ReplicaPushes counts hot-object replicas this proxy pushed to a
	// recent requester (piggybacked on a backwarding reply).
	ReplicaPushes uint64

	// ReplicaDrops counts cold replica copies this proxy shed back
	// toward stock ADC's single-location convergence.
	ReplicaDrops uint64

	// ReplicaHits counts local cache hits served from a pushed replica
	// copy — requests the stock protocol would have concentrated on the
	// object's single converged location.
	ReplicaHits uint64

	// RetriedFetches counts entry-chain retries after a failed upstream
	// chain (HTTP farm fault tolerance; entry proxies only).
	RetriedFetches uint64

	// FailoverOrigin counts entry chains that fell back to a direct
	// origin fetch after exhausting retries.
	FailoverOrigin uint64

	// BreakerDenied counts upstream fetches rejected immediately by an
	// open per-peer circuit breaker.
	BreakerDenied uint64

	// HedgedFetches counts entry chains that started a parallel
	// direct-origin hedge after HedgeDelay.
	HedgedFetches uint64

	// HedgeWins counts hedged chains where the hedge's answer was used.
	HedgeWins uint64
}

// Add accumulates other into s, for cluster-wide totals.
func (s *ProxyStats) Add(other ProxyStats) {
	s.Requests += other.Requests
	s.LocalHits += other.LocalHits
	s.ForwardLearned += other.ForwardLearned
	s.ForwardRandom += other.ForwardRandom
	s.ForwardOrigin += other.ForwardOrigin
	s.LoopsDetected += other.LoopsDetected
	s.RepliesSeen += other.RepliesSeen
	s.CacheInsertions += other.CacheInsertions
	s.CacheEvictions += other.CacheEvictions
	s.ExpiredPending += other.ExpiredPending
	s.StaleInvalidated += other.StaleInvalidated
	s.UnexpectedReplies += other.UnexpectedReplies
	s.Shed += other.Shed
	s.CoalescedMisses += other.CoalescedMisses
	s.ReplicaPushes += other.ReplicaPushes
	s.ReplicaDrops += other.ReplicaDrops
	s.ReplicaHits += other.ReplicaHits
	s.RetriedFetches += other.RetriedFetches
	s.FailoverOrigin += other.FailoverOrigin
	s.BreakerDenied += other.BreakerDenied
	s.HedgedFetches += other.HedgedFetches
	s.HedgeWins += other.HedgeWins
}

// LocalHitRate returns LocalHits/Requests for this proxy.
func (s *ProxyStats) LocalHitRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.LocalHits) / float64(s.Requests)
}
