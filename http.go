package adc

import (
	"fmt"
	"time"

	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/httpproxy"
	"github.com/adc-sim/adc/internal/ids"
)

// HTTPFarm is a running ADC proxy system speaking real HTTP on loopback
// ports — the paper's future-work "real proxy system" (§VI). Unlike the
// simulator it transfers actual payload bytes; the mapping tables decide
// which payloads each proxy stores.
type HTTPFarm struct {
	farm *httpproxy.Farm
}

// HTTPFarmConfig assembles an HTTPFarm. Zero table sizes default like
// Config's.
type HTTPFarmConfig struct {
	// Proxies is the array size.
	Proxies int
	// SingleTable, MultipleTable, CachingTable size the mapping tables.
	SingleTable   int
	MultipleTable int
	CachingTable  int
	// MaxHops bounds forwarding (0 = unbounded).
	MaxHops int
	// Seed drives random peer selection.
	Seed int64
	// MaxActive and MaxQueue bound each proxy's admission gate: at most
	// MaxActive entry requests run while MaxQueue more wait; beyond that
	// the proxy sheds with 429. Zero selects the built-in defaults,
	// negative disables the bound (MaxActive) or the queue (MaxQueue).
	MaxActive int
	MaxQueue  int
	// NoCoalesce disables miss coalescing (one upstream fetch shared by
	// concurrent misses on the same cold object).
	NoCoalesce bool
	// Health enables the fault-tolerance layer on every proxy: periodic
	// peer /healthz probes driving an up/suspect/down/recovering state
	// machine, failover routing around down peers, per-peer circuit
	// breakers, and entry-only retries with an origin fallback.
	Health bool
	// ProbeInterval spaces health probes (0 = default 250ms).
	ProbeInterval time.Duration
	// FailureThreshold is the consecutive-failure count that marks a peer
	// down (0 = default 3).
	FailureThreshold int
	// MaxRetries bounds entry-chain failover retries (0 = default 2,
	// negative = none).
	MaxRetries int
	// HedgeDelay, when positive, starts a parallel direct-origin fetch
	// for entry chains still unresolved after this long (0 = off).
	HedgeDelay time.Duration
	// TraceSample, when positive, enables cross-proxy distributed tracing
	// on every proxy, sampling 1-in-TraceSample entry requests (1 = all).
	// Spans are served at each proxy's /debug/trace for adctrace farm.
	TraceSample int
	// TraceRing caps each proxy's in-memory span ring (0 = default).
	TraceRing int
}

// NewHTTPFarm starts the origin server and all proxies. Close the farm
// when done.
func NewHTTPFarm(cfg HTTPFarmConfig) (*HTTPFarm, error) {
	if cfg.Proxies == 0 {
		cfg.Proxies = 5
	}
	if cfg.SingleTable == 0 {
		cfg.SingleTable = 2_000
	}
	if cfg.MultipleTable == 0 {
		cfg.MultipleTable = 2_000
	}
	if cfg.CachingTable == 0 {
		cfg.CachingTable = 1_000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	farm, err := httpproxy.NewFarm(httpproxy.FarmConfig{
		Proxies: cfg.Proxies,
		Tables: core.Config{
			SingleSize:   cfg.SingleTable,
			MultipleSize: cfg.MultipleTable,
			CachingSize:  cfg.CachingTable,
		},
		MaxHops:    cfg.MaxHops,
		Seed:       cfg.Seed,
		MaxActive:  cfg.MaxActive,
		MaxQueue:   cfg.MaxQueue,
		NoCoalesce: cfg.NoCoalesce,
		FaultTolerance: httpproxy.FaultTolerance{
			Health: httpproxy.HealthConfig{
				Enabled:          cfg.Health,
				ProbeInterval:    cfg.ProbeInterval,
				FailureThreshold: cfg.FailureThreshold,
			},
			MaxRetries: cfg.MaxRetries,
			HedgeDelay: cfg.HedgeDelay,
		},
		Tracing: httpproxy.Tracing{
			Enabled:     cfg.TraceSample > 0,
			SampleEvery: cfg.TraceSample,
			RingSize:    cfg.TraceRing,
		},
	})
	if err != nil {
		return nil, err
	}
	return &HTTPFarm{farm: farm}, nil
}

// ProxyURL returns the base URL of the i-th proxy; any HTTP client can GET
// <url>/obj/<id> with an X-Adc-Request-Id header.
func (f *HTTPFarm) ProxyURL(i int) (string, error) {
	if i < 0 || i >= len(f.farm.Proxies) {
		return "", fmt.Errorf("adc: proxy index %d out of range", i)
	}
	return f.farm.Proxies[i].URL(), nil
}

// OriginURL returns the origin server's base URL.
func (f *HTTPFarm) OriginURL() string { return f.farm.Origin.URL() }

// Get fetches one object through the given proxy with payload
// verification; hit reports whether a proxy cache served it. reqID must be
// globally unique per logical request (it drives loop detection).
func (f *HTTPFarm) Get(proxy int, object uint64, reqID string) (hit bool, err error) {
	if proxy < 0 || proxy >= len(f.farm.Proxies) {
		return false, fmt.Errorf("adc: proxy index %d out of range", proxy)
	}
	return f.farm.Get(proxy, ids.ObjectID(object), reqID)
}

// Run drives the farm with a workload from a single client, returning the
// observed hit statistics.
func (f *HTTPFarm) Run(src Source, seed int64) (requests, hits uint64, err error) {
	col, err := f.farm.RunWorkload(sourceAdapter{src}, seed)
	if err != nil {
		return 0, 0, err
	}
	return col.Requests(), col.Hits(), nil
}

// RunParallel drives the farm with workers concurrent clients, splitting
// the stream round-robin between them — the fast way to warm a farm.
// workers < 2 behaves exactly like Run; with more, the aggregate counts
// are returned but the exact hit count depends on request interleaving.
func (f *HTTPFarm) RunParallel(src Source, seed int64, workers int) (requests, hits uint64, err error) {
	return f.farm.RunWorkloadN(sourceAdapter{src}, seed, workers)
}

// SetTracer installs a request tracer across the farm: every proxy, the
// origin, and the farm's client side (Get/Run inject and deliver events).
// Events are wall-clock timestamped. Call it before driving traffic; nil
// uninstalls.
func (f *HTTPFarm) SetTracer(t *Tracer) { f.farm.SetTracer(t) }

// DebugURL returns the live-introspection base of the i-th proxy; append
// /debug/vars (JSON counters and table occupancy), /debug/tables (mapping
// table dump) or /debug/pprof/ (Go profiler).
func (f *HTTPFarm) DebugURL(i int) (string, error) {
	u, err := f.ProxyURL(i)
	if err != nil {
		return "", err
	}
	return u + "/debug", nil
}

// OriginResolved counts requests the origin server answered.
func (f *HTTPFarm) OriginResolved() uint64 { return f.farm.Origin.Resolved() }

// Close shuts down every server in the farm.
func (f *HTTPFarm) Close() error { return f.farm.Close() }
