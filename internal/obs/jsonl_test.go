package obs

import (
	"bytes"
	"strings"
	"testing"

	"github.com/adc-sim/adc/internal/ids"
)

func TestJSONLRoundTrip(t *testing.T) {
	in := []Event{
		{Seq: 1, Kind: KindInject, Node: ids.Client(0), Req: ids.NewRequestID(0, 1), Obj: 42, To: 0, Loc: ids.None},
		{Seq: 2, At: 17, Kind: KindForward, Node: 0, Req: ids.NewRequestID(0, 1), Obj: 42, To: 3, Loc: ids.None, Hops: 1, Arg: ReasonRandom},
		{Seq: 3, Kind: KindBackward, Node: 3, Req: ids.NewRequestID(0, 1), Obj: 42, To: 0, Loc: 3, Arg: EncodeOutcome(0, 1, true, false, false)},
		{Seq: 4, Kind: KindRetry, Node: ids.Client(0), Req: ids.NewRequestID(0, 2), Prev: ids.NewRequestID(0, 1), Obj: 42, To: 0, Loc: ids.None, Arg: 1},
		{Seq: 5, Kind: KindDeliver, Node: ids.Client(0), Req: ids.NewRequestID(0, 2), Obj: 42, To: ids.None, Loc: ids.Origin, Hops: 2, Arg: 1},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read back %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("event %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestReadJSONLSkipsBlankLines(t *testing.T) {
	src := `{"seq":1,"at":0,"kind":"inject","node":-10,"req":1,"obj":1,"to":0,"loc":-1,"prev":0,"hops":0,"arg":0}

{"seq":2,"at":0,"kind":"deliver","node":-10,"req":1,"obj":1,"to":-1,"loc":0,"prev":0,"hops":1,"arg":0}
`
	out, err := ReadJSONL(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("read %d events, want 2", len(out))
	}
}

func TestReadJSONLRejectsMalformedLines(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"bad json", "{not json}\n", "trace line 1"},
		{"unknown kind", `{"seq":1,"kind":"teleport"}` + "\n", `unknown event kind "teleport"`},
		{"names line", "{\"seq\":1,\"kind\":\"inject\"}\n{broken\n", "trace line 2"},
	}
	for _, c := range cases {
		_, err := ReadJSONL(strings.NewReader(c.src))
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.wantErr)
		}
	}
}

func TestValidate(t *testing.T) {
	client := ids.Client(0)
	req := ids.NewRequestID(0, 1)
	good := []Event{
		{Seq: 1, Kind: KindInject, Node: client, Req: req, Obj: 1, To: 0, Loc: ids.None},
		{Seq: 2, Kind: KindForward, Node: 0, Req: req, Obj: 1, To: 1, Loc: ids.None, Hops: 1},
		{Seq: 3, Kind: KindHit, Node: 1, Req: req, Obj: 1, To: ids.None, Loc: 1},
		{Seq: 4, Kind: KindBackward, Node: 1, Req: req, Obj: 1, To: 0, Loc: 1},
		{Seq: 5, Kind: KindDeliver, Node: client, Req: req, Obj: 1, To: ids.None, Loc: 1},
	}
	if err := Validate(good); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}

	bad := []struct {
		name    string
		mutate  func([]Event)
		wantErr string
	}{
		{"non-increasing seq", func(ev []Event) { ev[1].Seq = 1 }, "not strictly increasing"},
		{"forward without dest", func(ev []Event) { ev[1].To = ids.None }, "forward without destination"},
		{"hit without location", func(ev []Event) { ev[2].Loc = ids.None }, "hit without location"},
		{"backward without dest", func(ev []Event) { ev[3].To = ids.None }, "backward without next destination"},
		{"inject from non-client", func(ev []Event) { ev[0].Node = 2 }, "not a client"},
		{"deliver at non-client", func(ev []Event) { ev[4].Node = 2 }, "not a client"},
		{"unknown kind", func(ev []Event) { ev[0].Kind = 200 }, "unknown kind"},
	}
	for _, c := range bad {
		ev := make([]Event, len(good))
		copy(ev, good)
		c.mutate(ev)
		err := Validate(ev)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.wantErr)
		}
	}

	retryNoPrev := []Event{{Seq: 1, Kind: KindRetry, Node: client, Req: req, To: 0, Loc: ids.None}}
	if err := Validate(retryNoPrev); err == nil || !strings.Contains(err.Error(), "without superseded") {
		t.Errorf("retry without prev: err = %v", err)
	}
	dropNoDest := []Event{{Seq: 1, Kind: KindDrop, Node: 0, Req: req, To: ids.None, Loc: ids.None}}
	if err := Validate(dropNoDest); err == nil || !strings.Contains(err.Error(), "drop without destination") {
		t.Errorf("drop without dest: err = %v", err)
	}
}
