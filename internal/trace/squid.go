package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/workload"
)

// ParseSquidLog converts a Squid access.log (native format) into a request
// stream, so the simulator can replay real proxy traffic — the paper
// looked at "different online available log files of server and proxy
// systems" before settling on synthetic traces (§V.1.6); this parser makes
// that path available to users who do have logs.
//
// The native Squid format is space-separated:
//
//	time elapsed remotehost code/status bytes method URL rfc931 peerstatus/peerhost type
//
// Only the URL column matters here: each distinct URL maps to a stable
// 64-bit object ID (FNV-1a), preserving the request pattern exactly.
// Malformed lines are skipped and counted rather than failing the whole
// file — real logs contain noise.
func ParseSquidLog(r io.Reader) (workload.Source, *SquidStats, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	var objs []ids.ObjectID
	stats := &SquidStats{urls: make(map[uint64]bool)}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 7 {
			stats.Malformed++
			continue
		}
		url := fields[6]
		if !strings.Contains(url, "://") && !strings.HasPrefix(url, "/") {
			// The URL column of native logs always carries a scheme
			// or an absolute path; anything else is a parse slip.
			stats.Malformed++
			continue
		}
		id := fnv1a(url)
		if !stats.urls[id] {
			stats.urls[id] = true
			stats.Distinct++
		}
		objs = append(objs, ids.ObjectID(id))
		stats.Requests++
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("trace: scan squid log: %w", err)
	}
	if stats.Requests == 0 {
		return nil, nil, fmt.Errorf("trace: no parseable requests in squid log (%d malformed lines)", stats.Malformed)
	}
	return NewSliceSource(objs), stats, nil
}

// SquidStats reports what the parser saw.
type SquidStats struct {
	// Requests is the number of parsed requests.
	Requests int
	// Distinct is the number of unique URLs.
	Distinct int
	// Malformed counts skipped lines.
	Malformed int

	urls map[uint64]bool
}

// fnv1a is the 64-bit FNV-1a hash of s.
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
