package wire

import (
	"testing"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/msg"
)

// The wire format sits on every TCP hop; these benches bound its cost.

func BenchmarkEncodeRequest(b *testing.B) {
	m := &msg.Request{
		To: 3, ID: ids.NewRequestID(1, 42), Object: 123456,
		Client: ids.Client(1), Sender: 2,
		Path: []ids.NodeID{0, 1, 2}, Hops: 5,
	}
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := Encode(buf[:0], m)
		if err != nil {
			b.Fatal(err)
		}
		_ = out
	}
}

func BenchmarkDecodeRequest(b *testing.B) {
	m := &msg.Request{
		To: 3, ID: ids.NewRequestID(1, 42), Object: 123456,
		Client: ids.Client(1), Sender: 2,
		Path: []ids.NodeID{0, 1, 2}, Hops: 5,
	}
	frame, err := Encode(nil, m)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}
