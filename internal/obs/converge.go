package obs

import (
	"sort"

	"github.com/adc-sim/adc/internal/ids"
)

// Convergence describes when the proxy group settled on a single believed
// location for one object — the paper's central claim for the backwarding
// algorithm (§IV.2): replies walking the request path back teach every
// proxy on it the same resolver, so the group's mapping tables converge.
//
// A proxy's belief is tracked from the trace: a local hit means it believes
// itself, a backward step means it learned Event.Loc, an invalidation
// clears it. The group is uniform when every proxy holding a belief agrees;
// StableFrom is the start of the final uninterrupted uniform period.
type Convergence struct {
	Obj ids.ObjectID
	// FirstSeen is the time of the first event mentioning the object.
	FirstSeen int64
	// StableFrom is when the final stable agreement began (valid only if
	// Converged).
	StableFrom int64
	// Converged reports whether the trace ended with a uniform belief.
	Converged bool
	// FinalLoc is the agreed location at the end of the trace.
	FinalLoc ids.NodeID
	// Believers is how many proxies held the final belief.
	Believers int
}

// Time returns the convergence time: how long after first sight the group
// reached its final stable agreement. Zero if never converged.
func (c Convergence) Time() int64 {
	if !c.Converged {
		return 0
	}
	return c.StableFrom - c.FirstSeen
}

type beliefState struct {
	conv    *Convergence
	beliefs map[ids.NodeID]ids.NodeID
}

// check re-evaluates uniformity after a belief change at time at.
func (s *beliefState) check(at int64) {
	var loc ids.NodeID = ids.None
	uniform := len(s.beliefs) > 0
	for _, l := range s.beliefs {
		if loc == ids.None {
			loc = l
		} else if l != loc {
			uniform = false
			break
		}
	}
	if uniform {
		if !s.conv.Converged {
			s.conv.Converged = true
			s.conv.StableFrom = at
		}
		s.conv.FinalLoc = loc
		s.conv.Believers = len(s.beliefs)
	} else {
		s.conv.Converged = false
		s.conv.FinalLoc = ids.None
		s.conv.Believers = 0
	}
}

// ConvergenceTimes computes per-object convergence from a trace. Only Hit,
// Backward, and Invalidate events matter, so a tracer restricted to those
// kinds (New(KindHit, KindBackward, KindInvalidate)) yields identical
// results at a fraction of the memory.
func ConvergenceTimes(events []Event) map[ids.ObjectID]*Convergence {
	sorted := make([]Event, len(events))
	copy(sorted, events)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Seq < sorted[j].Seq })

	states := make(map[ids.ObjectID]*beliefState)
	get := func(obj ids.ObjectID, at int64) *beliefState {
		s := states[obj]
		if s == nil {
			s = &beliefState{
				conv:    &Convergence{Obj: obj, FirstSeen: at, FinalLoc: ids.None},
				beliefs: make(map[ids.NodeID]ids.NodeID),
			}
			states[obj] = s
		}
		return s
	}

	for _, e := range sorted {
		switch e.Kind {
		case KindHit:
			s := get(e.Obj, e.Time())
			s.beliefs[e.Node] = e.Loc
			s.check(e.Time())
		case KindBackward:
			if e.Loc == ids.None {
				continue
			}
			s := get(e.Obj, e.Time())
			s.beliefs[e.Node] = e.Loc
			s.check(e.Time())
		case KindInvalidate:
			s := get(e.Obj, e.Time())
			delete(s.beliefs, e.Node)
			s.check(e.Time())
		}
	}

	out := make(map[ids.ObjectID]*Convergence, len(states))
	for obj, s := range states {
		out[obj] = s.conv
	}
	return out
}

// ConvergenceSummary aggregates per-object convergence into the scalar the
// sweep tooling plots: mean and max convergence time over converged
// objects, plus how many objects never settled.
type ConvergenceSummary struct {
	Objects     int
	Converged   int
	MeanTime    float64
	MaxTime     int64
	Unconverged int
}

// SummarizeConvergence folds per-object results into a ConvergenceSummary.
func SummarizeConvergence(m map[ids.ObjectID]*Convergence) ConvergenceSummary {
	var s ConvergenceSummary
	var total int64
	for _, c := range m {
		s.Objects++
		if c.Converged {
			s.Converged++
			t := c.Time()
			total += t
			if t > s.MaxTime {
				s.MaxTime = t
			}
		} else {
			s.Unconverged++
		}
	}
	if s.Converged > 0 {
		s.MeanTime = float64(total) / float64(s.Converged)
	}
	return s
}
