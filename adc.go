// Package adc is a faithful, self-contained reproduction of Adaptive
// Distributed Caching (Kaiser, Tsui, Liu — "A Study of the Performance and
// Parameter Sensitivity of Adaptive Distributed Caching", ICDCS 2003): a
// self-organizing distributed proxy cache in which every proxy is an
// autonomous agent that learns object locations from replies retracing the
// request path ("multicasting by backwarding"), keeps three bounded mapping
// tables (single, multiple, caching), and caches selectively by aged
// average request frequency.
//
// The package offers three levels of entry:
//
//   - Run executes one complete simulation — N proxy agents, an origin
//     server and a closed-loop client replaying a workload — and returns
//     hit-rate, hop and timing measurements. Algorithms: ADC, the CARP
//     hashing baseline the paper compares against, and a consistent-hashing
//     extension baseline. Runtimes: a deterministic sequential engine, one
//     goroutine per agent, or real TCP sockets on loopback.
//
//   - NewWorkload generates the paper's three-phase synthetic request
//     stream (fill, request-I, request-II = replay of request-I) with
//     Zipf-skewed popularity and one-timer pollution; SaveTrace/LoadTrace
//     persist streams for exact repetition.
//
//   - The Experiment functions (Compare, Sweep, MaxHopsSweep, the
//     Ablations) regenerate every figure of the paper's evaluation; see
//     EXPERIMENTS.md for the measured-vs-paper record.
//
// Everything is deterministic given a seed, uses only the standard
// library, and runs the paper's full 3.99 M-request setup in about a
// minute (Scale 1.0) or a 1/10-scale replica in seconds.
package adc

import (
	"fmt"
	"time"

	"github.com/adc-sim/adc/internal/cluster"
	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/proxy"
	"github.com/adc-sim/adc/internal/sim"
)

// Algorithm selects the distributed-caching scheme to simulate.
type Algorithm string

// Supported algorithms.
const (
	// ADC is the paper's Adaptive Distributed Caching.
	ADC Algorithm = "adc"
	// CARP is the paper's hashing baseline (§V.1.1, highest-random-
	// weight hashing with LRU caches and direct-to-client replies).
	CARP Algorithm = "carp"
	// CHash replaces CARP's hash with a consistent-hashing ring
	// (Karger et al.) — an extension baseline.
	CHash Algorithm = "chash"
	// Hierarchical is the classic parent/child caching-tree baseline:
	// N leaves share one root parent; every proxy on the reply path
	// caches with LRU. One extra node (the root) joins the array.
	Hierarchical Algorithm = "hier"
	// Coordinator is the authors' first-generation central-coordinator
	// baseline (paper §II.1): one content-blind dispatcher in front of
	// N LRU caches; every message passes through it.
	Coordinator Algorithm = "coord"
)

// EntryPolicy selects which proxy a client sends each request to.
type EntryPolicy string

// Supported entry policies.
const (
	// EntryRandom picks a uniformly random proxy per request (default).
	EntryRandom EntryPolicy = "random"
	// EntryRoundRobin cycles through the proxies.
	EntryRoundRobin EntryPolicy = "round-robin"
	// EntryFixed pins every request to proxy 0.
	EntryFixed EntryPolicy = "fixed"
)

// Runtime selects the execution substrate.
type Runtime string

// Supported runtimes. All three produce identical metrics under the
// default single-client closed loop (the paper's §V.1.2 equivalence).
const (
	// RuntimeSequential is the deterministic single-threaded engine.
	RuntimeSequential Runtime = "sequential"
	// RuntimeAgents runs one goroutine per node with channel mailboxes.
	RuntimeAgents Runtime = "agents"
	// RuntimeTCP gives every node a loopback TCP listener and moves
	// each hop through real sockets as binary frames.
	RuntimeTCP Runtime = "tcp"
	// RuntimeVirtualTime is the discrete-event engine: every transfer
	// is delayed by a latency model (Config.Latency), producing
	// response-time metrics; required for open-loop injection.
	RuntimeVirtualTime Runtime = "vtime"
	// RuntimeParallel is the sharded multi-core virtual-time engine:
	// byte-identical results to RuntimeVirtualTime at every shard count
	// (Config.Shards). Lossless protocol only — no faults, recovery,
	// tracing or tick-bucketed metrics.
	RuntimeParallel Runtime = "parallel"
)

// Latency models the virtual-time cost of each message transfer, in
// abstract ticks (the defaults read as microseconds: 5 ms client↔proxy,
// 10 ms proxy↔proxy, 50 ms proxy↔origin, 0.1 ms service).
type Latency struct {
	ClientProxy int64
	ProxyProxy  int64
	ProxyOrigin int64
	Service     int64
	// QueueService serializes the Service component per receiving node
	// (one message in service at a time), so overloaded proxies and the
	// origin build real backlogs instead of paying a flat per-message
	// cost. Requires RuntimeVirtualTime; uncontended messages cost the
	// same either way.
	QueueService bool
}

// TableBackend selects the ordered-table data structure.
type TableBackend string

// Supported backends.
const (
	// BackendBTree is a bounded block B-tree keyed by (Key, Object):
	// O(log n) search with block-local memmoves. Default — it is the
	// "more adapted data structure" the paper calls for in §V.3.3 and
	// produces byte-identical results to the others.
	BackendBTree TableBackend = "btree"
	// BackendSlice is a sorted slice with binary search (the paper's
	// own structure).
	BackendSlice TableBackend = "slice"
	// BackendSkipList is the O(log n) replacement the paper proposes
	// as future work (§V.3.3).
	BackendSkipList TableBackend = "skiplist"
	// BackendList is the fully paper-faithful O(n) linked list, for
	// the Fig. 15 timing reproduction only.
	BackendList TableBackend = "list"
)

// Config describes one simulation. Zero fields take the paper's reference
// values where one exists (5 proxies, 20k/20k/10k tables — scaled only if
// you say so — unbounded hops, window 5000).
type Config struct {
	// Algorithm selects ADC (default), CARP or CHash.
	Algorithm Algorithm

	// Proxies is the array size. Default 5 (§V.2).
	Proxies int

	// SingleTable, MultipleTable and CachingTable size each proxy's
	// mapping tables in entries. Defaults 20000/20000/10000 (§V.2).
	// For CARP/CHash, CachingTable is the LRU cache size and the other
	// two are ignored.
	SingleTable   int
	MultipleTable int
	CachingTable  int

	// MaxHops bounds ADC's forwarding chain; 0 (default) is unbounded,
	// matching the paper.
	MaxHops int

	// Seed makes the run reproducible. Default 1.
	Seed int64

	// Entry selects the client's entry-proxy policy. Default random.
	Entry EntryPolicy

	// Clients is the number of closed-loop drivers. Default 1, which
	// is also what makes all runtimes deterministic and equivalent.
	Clients int

	// Window is the hit-rate moving-average window. Default 5000
	// (§V.2.1).
	Window int

	// SampleEvery records one time-series point per n completed
	// requests; 0 disables series collection.
	SampleEvery int

	// Runtime selects sequential (default), agents or tcp.
	Runtime Runtime

	// Backend selects the ordered-table implementation. Default btree.
	Backend TableBackend

	// SingleScan switches the single-table to the paper's O(n)
	// element-wise scan (timing studies only).
	SingleScan bool

	// CacheLRU replaces selective caching with cache-all-passing LRU
	// (the §III.4 comparison baseline; ablation studies only).
	CacheLRU bool

	// AgingOff disables the Fig. 4 aging rule (ablation studies only).
	AgingOff bool

	// LatencyModel sets the virtual-time link costs for
	// RuntimeVirtualTime; nil selects the default WAN model.
	LatencyModel *Latency

	// OpenLoopInterval switches clients to open-loop injection with
	// this mean inter-arrival time in virtual ticks (0 = closed loop;
	// requires RuntimeVirtualTime). Poisson selects exponential gaps.
	OpenLoopInterval int64
	Poisson          bool

	// JoinProxyAt grows the cluster by one fresh ADC proxy when the
	// request stream crosses each index (strictly increasing; requires
	// ADC, the sequential runtime and a single client). The newcomer
	// starts with empty tables and attracts load purely through
	// self-organization.
	JoinProxyAt []uint64

	// Faults injects deterministic failures — message loss, delay
	// jitter, fail-stop proxy crashes — into the run (requires
	// RuntimeVirtualTime). nil keeps the paper's lossless transport.
	Faults *FaultPlan

	// Recovery enables the timeout/retransmission/pending-TTL recovery
	// protocol, an extension beyond the paper's algorithm (requires
	// RuntimeVirtualTime). nil disables it; zero fields of a non-nil
	// Recovery take the reference defaults.
	Recovery *Recovery

	// Replication enables the hot-object replication controller, an
	// extension beyond the paper's algorithm (requires ADC): objects
	// that run hot at their holder get replicated to recent requesters,
	// forwarding spreads traffic across the holders, and cold copies
	// drop back to the stock single-location state. nil disables it;
	// zero fields of a non-nil Replication take the reference defaults.
	Replication *Replication

	// ResponseBuckets, when positive, tracks response times in a
	// histogram with that many buckets of ResponseBucketTicks virtual
	// ticks each (default 500), enabling Result.P99Response. Requires
	// RuntimeVirtualTime or RuntimeParallel.
	ResponseBuckets     int
	ResponseBucketTicks int

	// Tracer records per-hop request-path events during the run
	// (requires the sequential or virtual-time runtime). nil disables
	// tracing at zero cost. See NewTracer.
	Tracer *Tracer

	// MetricsEvery collects windowed time-series metrics into
	// Result.Buckets every this many virtual ticks (requires
	// RuntimeVirtualTime; 0 disables).
	MetricsEvery int64

	// Shards is the worker-shard count for RuntimeParallel; 0 means one
	// shard per available CPU. Results are byte-identical at every value.
	Shards int
}

// FaultPlan is a deterministic failure schedule. All randomness derives
// from the plan's own seed, so identical plans produce identical drops,
// delays and crashes on every run.
type FaultPlan struct {
	// Seed drives the plan's private random stream (default: the run's
	// Seed).
	Seed int64
	// Loss is the i.i.d. probability in [0, 1] that any network transfer
	// is discarded.
	Loss float64
	// Jitter adds a uniform random delay in [0, Jitter] virtual ticks to
	// every surviving transfer.
	Jitter int64
	// LinkLoss adds extra loss on specific directed proxy→proxy links.
	LinkLoss []LinkLoss
	// Crashes schedules fail-stop proxy failures (ADC only).
	Crashes []Crash
}

// LinkLoss is a per-directed-link loss rate between two proxies.
type LinkLoss struct {
	// FromProxy and ToProxy are 0-based proxy indices.
	FromProxy, ToProxy int
	// Rate is the loss probability in [0, 1] on this link.
	Rate float64
}

// Crash schedules one fail-stop proxy failure: the proxy drops all traffic
// from At until RestartAt (0 = stays down). LoseTables selects a cold
// restart with empty mapping tables; volatile request state is always lost.
type Crash struct {
	// Proxy is the 0-based index of the crashing proxy.
	Proxy int
	// At and RestartAt are virtual times in ticks.
	At, RestartAt int64
	// LoseTables rebuilds the mapping tables empty on restart.
	LoseTables bool
}

// Recovery parameterizes the opt-in recovery protocol. All durations are
// virtual ticks; zero fields take the reference defaults (400 ms timeout,
// 8 retries, backoff 2, 1 s pending TTL under the default latency model).
type Recovery struct {
	// Timeout is the client's first-attempt timeout.
	Timeout int64
	// MaxRetries bounds retransmissions per request before abandoning.
	MaxRetries int
	// Backoff multiplies the timeout after every retry (≥ 1).
	Backoff float64
	// PendingTTL expires proxy loop-detection entries whose reply never
	// came back.
	PendingTTL int64
}

// Replication parameterizes the opt-in hot-object replication controller.
// Zero fields take the reference defaults (threshold 32 hits, 3 replicas,
// window 1024 requests, drop below 1 hit/window).
type Replication struct {
	// HotThreshold is how many cache hits an object must collect within
	// one window before its holder starts pushing replicas.
	HotThreshold int
	// MaxReplicas bounds the advertised holders beyond the primary.
	MaxReplicas int
	// Window is the controller's decay period in received requests.
	Window int64
	// DropThreshold is the minimum window hit count that keeps a
	// replica copy alive across a window roll.
	DropThreshold int
}

// withDefaults fills unset fields with the documented defaults.
func (c Config) withDefaults() Config {
	if c.Algorithm == "" {
		c.Algorithm = ADC
	}
	if c.Proxies == 0 {
		c.Proxies = 5
	}
	if c.SingleTable == 0 {
		c.SingleTable = 20_000
	}
	if c.MultipleTable == 0 {
		c.MultipleTable = 20_000
	}
	if c.CachingTable == 0 {
		c.CachingTable = 10_000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Entry == "" {
		c.Entry = EntryRandom
	}
	if c.Clients == 0 {
		c.Clients = 1
	}
	if c.Window == 0 {
		c.Window = 5000
	}
	if c.Runtime == "" {
		c.Runtime = RuntimeSequential
	}
	if c.Backend == "" {
		c.Backend = BackendBTree
	}
	return c
}

// toInternal converts to the internal cluster configuration.
func (c Config) toInternal() (cluster.Config, error) {
	c = c.withDefaults()
	algo, err := cluster.ParseAlgorithm(string(c.Algorithm))
	if err != nil {
		return cluster.Config{}, err
	}
	var entry sim.EntryPolicy
	switch c.Entry {
	case EntryRandom:
		entry = sim.EntryRandom
	case EntryRoundRobin:
		entry = sim.EntryRoundRobin
	case EntryFixed:
		entry = sim.EntryFixed
	default:
		return cluster.Config{}, fmt.Errorf("adc: unknown entry policy %q", c.Entry)
	}
	var rt cluster.Runtime
	switch c.Runtime {
	case RuntimeSequential:
		rt = cluster.RuntimeSequential
	case RuntimeAgents:
		rt = cluster.RuntimeAgents
	case RuntimeTCP:
		rt = cluster.RuntimeTCP
	case RuntimeVirtualTime:
		rt = cluster.RuntimeVirtualTime
	case RuntimeParallel:
		rt = cluster.RuntimeParallel
	default:
		return cluster.Config{}, fmt.Errorf("adc: unknown runtime %q", c.Runtime)
	}
	var latency sim.LatencyModel
	if c.LatencyModel != nil {
		latency = sim.LatencyModel{
			ClientProxy:  c.LatencyModel.ClientProxy,
			ProxyProxy:   c.LatencyModel.ProxyProxy,
			ProxyOrigin:  c.LatencyModel.ProxyOrigin,
			Service:      c.LatencyModel.Service,
			QueueService: c.LatencyModel.QueueService,
		}
	}
	backend, ok := core.ParseBackend(string(c.Backend))
	if !ok {
		return cluster.Config{}, fmt.Errorf("adc: unknown backend %q", c.Backend)
	}
	var faults *sim.FaultPlan
	if c.Faults != nil {
		faults = &sim.FaultPlan{
			Seed:   c.Faults.Seed,
			Loss:   c.Faults.Loss,
			Jitter: c.Faults.Jitter,
		}
		if faults.Seed == 0 {
			faults.Seed = c.Seed
		}
		for _, l := range c.Faults.LinkLoss {
			faults.LinkLoss = append(faults.LinkLoss, sim.LinkLoss{
				From: ids.NodeID(l.FromProxy),
				To:   ids.NodeID(l.ToProxy),
				Rate: l.Rate,
			})
		}
		for _, cr := range c.Faults.Crashes {
			faults.Crashes = append(faults.Crashes, sim.Crash{
				Node:       ids.NodeID(cr.Proxy),
				At:         cr.At,
				RestartAt:  cr.RestartAt,
				LoseTables: cr.LoseTables,
			})
		}
	}
	var recovery sim.Recovery
	if c.Recovery != nil {
		recovery = sim.Recovery{
			Enabled:    true,
			Timeout:    c.Recovery.Timeout,
			MaxRetries: c.Recovery.MaxRetries,
			Backoff:    c.Recovery.Backoff,
			PendingTTL: c.Recovery.PendingTTL,
		}
	}
	var replication proxy.Replication
	if c.Replication != nil {
		replication = proxy.Replication{
			Enabled:       true,
			HotThreshold:  c.Replication.HotThreshold,
			MaxReplicas:   c.Replication.MaxReplicas,
			Window:        c.Replication.Window,
			DropThreshold: c.Replication.DropThreshold,
		}
	}
	return cluster.Config{
		Algorithm:  algo,
		NumProxies: c.Proxies,
		Tables: core.Config{
			SingleSize:    c.SingleTable,
			MultipleSize:  c.MultipleTable,
			CachingSize:   c.CachingTable,
			Backend:       backend,
			SingleScan:    c.SingleScan,
			CacheAdmitAll: c.CacheLRU,
			AgingOff:      c.AgingOff,
		},
		MaxHops:          c.MaxHops,
		Seed:             c.Seed,
		EntryPolicy:      entry,
		Clients:          c.Clients,
		Window:           c.Window,
		SampleEvery:      uint64(c.SampleEvery),
		Runtime:          rt,
		Latency:          latency,
		OpenLoopInterval: c.OpenLoopInterval,
		Poisson:          c.Poisson,
		JoinProxyAt:      c.JoinProxyAt,
		Faults:              faults,
		Recovery:            recovery,
		Replication:         replication,
		Tracer:              c.Tracer,
		MetricsEvery:        c.MetricsEvery,
		ResponseBuckets:     c.ResponseBuckets,
		ResponseBucketTicks: c.ResponseBucketTicks,
		Shards:              c.Shards,
	}, nil
}

// Point is one time-series sample: windowed and cumulative hit rate and
// hops, keyed by completed requests.
type Point struct {
	Requests   uint64
	HitRate    float64
	CumHitRate float64
	Hops       float64
	CumHops    float64
}

// ProxyStats are one proxy's event counters after a run.
// ExpiredPending/StaleInvalidated/UnexpectedReplies belong to the recovery
// extension and stay zero in paper-faithful runs; Shed and CoalescedMisses
// belong to the HTTP farm's admission control and miss coalescing and stay
// zero in simulator runs; ReplicaPushes/ReplicaDrops/ReplicaHits belong to
// the hot-object replication extension and stay zero with replication off;
// RetriedFetches through HedgeWins belong to the HTTP farm's
// fault-tolerance layer and stay zero with health probing off.
type ProxyStats struct {
	Requests          uint64
	LocalHits         uint64
	ForwardLearned    uint64
	ForwardRandom     uint64
	ForwardOrigin     uint64
	LoopsDetected     uint64
	RepliesSeen       uint64
	CacheInsertions   uint64
	CacheEvictions    uint64
	ExpiredPending    uint64
	StaleInvalidated  uint64
	UnexpectedReplies uint64
	Shed              uint64
	CoalescedMisses   uint64
	ReplicaPushes     uint64
	ReplicaDrops      uint64
	ReplicaHits       uint64
	RetriedFetches    uint64
	FailoverOrigin    uint64
	BreakerDenied     uint64
	HedgedFetches     uint64
	HedgeWins         uint64
}

// Result is the outcome of one simulation.
type Result struct {
	// Requests and Hits count completed requests and proxy-cache hits.
	Requests uint64
	Hits     uint64
	// HitRate is Hits/Requests over the whole run.
	HitRate float64
	// Hops is the mean message transfers per request (§V.2.2).
	Hops float64
	// PathLen is the mean number of proxies on the forwarding path.
	PathLen float64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// MeanResponse and MaxResponse are virtual-time response times in
	// ticks; zero unless the run used RuntimeVirtualTime.
	MeanResponse float64
	MaxResponse  float64
	// P99Response is the 99th-percentile response time in ticks; zero
	// unless Config.ResponseBuckets was set.
	P99Response float64
	// MaxMeanShare and GiniShare measure how unevenly the request load
	// spread over the proxies: busiest proxy's load over the mean
	// (1.0 = even) and the Gini coefficient of the per-proxy request
	// counts (0 = even). Under Zipf traffic stock ADC concentrates load
	// on the head objects' holders; the replication extension exists to
	// pull these numbers down.
	MaxMeanShare float64
	GiniShare    float64
	// Series holds time-series samples when SampleEvery > 0.
	Series []Point
	// ProxyStats has one entry per proxy, indexed by proxy ID.
	ProxyStats []ProxyStats
	// OriginResolved counts requests the origin server had to answer.
	OriginResolved uint64

	// Fault/recovery observability. All of the following are zero in
	// lossless runs without recovery.
	//
	// Injected counts logical client requests (retransmissions count
	// once); Completion is Requests/Injected — below 1 when loss strands
	// or abandons chains.
	Injected   uint64
	Completion float64
	// Dropped counts messages the engine discarded: fault-plan losses
	// and deliveries addressed to crashed proxies — the run's
	// undelivered in-flight messages.
	Dropped uint64
	// LeakedPending is the total of unretired loop-detection pending
	// entries across ADC proxies at run end (0 with recovery enabled:
	// the TTL drains them).
	LeakedPending int
	// Timeouts/Retries/Abandoned/StaleReplies are the recovery
	// protocol's client-side counters; Abandoned counts permanently
	// stranded chains.
	Timeouts     uint64
	Retries      uint64
	Abandoned    uint64
	StaleReplies uint64
	// Crashes and Restarts count applied fail-stop transitions.
	Crashes  uint64
	Restarts uint64

	// Buckets holds windowed time-series metrics when Config.MetricsEvery
	// was set.
	Buckets []TimeBucket
}

// Run builds a cluster for cfg and replays src against it.
func Run(cfg Config, src Source) (*Result, error) {
	icfg, err := cfg.toInternal()
	if err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("adc: workload source must not be nil")
	}
	res, err := cluster.Run(icfg, sourceAdapter{src})
	if err != nil {
		return nil, err
	}
	return convertResult(res), nil
}

func convertResult(res *cluster.Result) *Result {
	out := &Result{
		Requests:       res.Summary.Requests,
		Hits:           res.Summary.Hits,
		HitRate:        res.Summary.HitRate,
		Hops:           res.Summary.Hops,
		PathLen:        res.Summary.PathLen,
		Elapsed:        res.Elapsed,
		MeanResponse:   res.Summary.MeanResponse,
		MaxResponse:    res.Summary.MaxResponse,
		P99Response:    res.Summary.P99Response,
		MaxMeanShare:   res.MaxMeanShare,
		GiniShare:      res.GiniShare,
		OriginResolved: res.OriginResolved,
		Injected:       res.Injected,
		Completion:     res.Completion,
		Dropped:        res.Dropped,
		LeakedPending:  res.LeakedPending,
		Timeouts:       res.Summary.Timeouts,
		Retries:        res.Summary.Retries,
		Abandoned:      res.Summary.Abandoned,
		StaleReplies:   res.Summary.StaleReplies,
		Crashes:        res.Faults.Crashes,
		Restarts:       res.Faults.Restarts,
	}
	for _, p := range res.Series {
		out.Series = append(out.Series, Point{
			Requests:   p.Requests,
			HitRate:    p.HitRate,
			CumHitRate: p.CumHitRate,
			Hops:       p.Hops,
			CumHops:    p.CumHops,
		})
	}
	for _, s := range res.ProxyStats {
		out.ProxyStats = append(out.ProxyStats, ProxyStats(s))
	}
	out.Buckets = convertBuckets(res.Buckets)
	return out
}
