// Adaptivity: the self-organization claim in action. The workload's hot
// set is replaced by a disjoint one every quarter of the run — the objects
// that were popular go cold and a fresh set takes over. ADC's tables must
// unlearn the old locations (aging) and converge on new ones
// (backwarding), with the hit rate recovering on its own; no coordinator
// tells anyone anything.
//
//	go run ./examples/adaptivity
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/adc-sim/adc"
)

func main() {
	const (
		total  = 200_000
		period = 50_000 // hot set shifts every 50k requests (4 epochs)
	)
	workload, err := adc.NewShiftWorkload(adc.ShiftWorkloadConfig{
		Requests:   total,
		Period:     period,
		Population: 400,
		Seed:       5,
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := adc.Run(adc.Config{
		Algorithm:     adc.ADC,
		Proxies:       5,
		SingleTable:   1_000,
		MultipleTable: 1_000,
		CachingTable:  400,
		Seed:          5,
		SampleEvery:   total / 50,
		Window:        2_000,
	}, workload)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("windowed hit rate over time (%d hot-set shifts):\n", workload.Epochs()-1)
	for _, p := range res.Series {
		bar := strings.Repeat("#", int(p.HitRate*50))
		marker := ""
		if p.Requests%period == 0 && p.Requests < total {
			marker = "<- shift"
		}
		fmt.Printf("%7d %5.3f %-50s %s\n", p.Requests, p.HitRate, bar, marker)
	}

	// Quantify a recovery: windowed hit right after the second shift vs
	// just before the third.
	perEpoch := len(res.Series) / 4
	dip := res.Series[perEpoch].HitRate      // first sample of epoch 2
	peak := res.Series[2*perEpoch-1].HitRate // last sample of epoch 2
	fmt.Printf("\nafter a shift the windowed hit rate dips to %.3f and recovers to %.3f\n", dip, peak)
	fmt.Println("within the epoch — aging expired the stale entries and backwarding")
	fmt.Println("re-converged the maps, with no coordinator involved.")
}
