package workload

import (
	"testing"

	"github.com/adc-sim/adc/internal/ids"
)

func TestShiftConfigValidate(t *testing.T) {
	valid := ShiftConfig{TotalRequests: 100, Period: 10, Population: 5}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	cases := []ShiftConfig{
		{Period: 10, Population: 5},
		{TotalRequests: 100, Population: 5},
		{TotalRequests: 100, Period: 10},
		{TotalRequests: 100, Period: 10, Population: 5, OneTimerProb: 1},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d must fail validation", i)
		}
	}
}

func TestShiftEpochsDisjoint(t *testing.T) {
	g, err := NewShift(ShiftConfig{TotalRequests: 3000, Period: 1000, Population: 50})
	if err != nil {
		t.Fatal(err)
	}
	perEpoch := make([]map[ids.ObjectID]bool, 3)
	for i := range perEpoch {
		perEpoch[i] = make(map[ids.ObjectID]bool)
	}
	for i := 0; i < 3000; i++ {
		obj, ok := g.Next()
		if !ok {
			t.Fatal("stream ended early")
		}
		perEpoch[g.EpochAt(i)][obj] = true
	}
	for a := 0; a < 3; a++ {
		for b := a + 1; b < 3; b++ {
			for obj := range perEpoch[a] {
				if perEpoch[b][obj] {
					t.Fatalf("object %v appears in epochs %d and %d", obj, a, b)
				}
			}
		}
	}
	for i, m := range perEpoch {
		if len(m) == 0 || len(m) > 50 {
			t.Errorf("epoch %d touched %d objects, want 1..50", i, len(m))
		}
	}
}

func TestShiftDeterministicAndResettable(t *testing.T) {
	mk := func() []ids.ObjectID {
		g, err := NewShift(ShiftConfig{TotalRequests: 500, Period: 100, Population: 20, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		var out []ids.ObjectID
		for {
			obj, ok := g.Next()
			if !ok {
				return out
			}
			out = append(out, obj)
		}
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed shift streams diverged at %d", i)
		}
	}

	g, err := NewShift(ShiftConfig{TotalRequests: 500, Period: 100, Population: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	first := make([]ids.ObjectID, 0, 500)
	for {
		obj, ok := g.Next()
		if !ok {
			break
		}
		first = append(first, obj)
	}
	g.Reset()
	for i := 0; ; i++ {
		obj, ok := g.Next()
		if !ok {
			break
		}
		if obj != first[i] {
			t.Fatalf("reset replay diverged at %d", i)
		}
	}
}

func TestShiftEpochsCount(t *testing.T) {
	g, err := NewShift(ShiftConfig{TotalRequests: 2500, Period: 1000, Population: 10})
	if err != nil {
		t.Fatal(err)
	}
	if g.Epochs() != 3 {
		t.Errorf("Epochs = %d, want 3", g.Epochs())
	}
	if g.Total() != 2500 {
		t.Errorf("Total = %d", g.Total())
	}
}

func TestShiftOneTimers(t *testing.T) {
	g, err := NewShift(ShiftConfig{
		TotalRequests: 5000, Period: 1000, Population: 10, OneTimerProb: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	oneTimers := 0
	for {
		obj, ok := g.Next()
		if !ok {
			break
		}
		if obj >= ids.ObjectID(oneTimerBase) {
			oneTimers++
		}
	}
	frac := float64(oneTimers) / 5000
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("one-timer fraction = %.3f, want ≈0.5", frac)
	}
}
