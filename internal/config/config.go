// Package config loads and saves simulation configurations as JSON, so an
// experiment can be described by a file checked into a repository instead
// of a flag soup — the reproducibility concern of §V.1.6 applied to
// parameters instead of request streams.
package config

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/adc-sim/adc/internal/cluster"
	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/sim"
	"github.com/adc-sim/adc/internal/workload"
)

// File is the on-disk experiment description.
type File struct {
	// Algorithm: "adc", "carp" or "chash".
	Algorithm string `json:"algorithm"`
	// Proxies is the array size.
	Proxies int `json:"proxies"`
	// SingleTable, MultipleTable, CachingTable size the mapping tables.
	SingleTable   int `json:"singleTable"`
	MultipleTable int `json:"multipleTable"`
	CachingTable  int `json:"cachingTable"`
	// MaxHops bounds forwarding (0 = unbounded).
	MaxHops int `json:"maxHops,omitempty"`
	// Seed drives all randomness.
	Seed int64 `json:"seed"`
	// Entry: "random", "round-robin" or "fixed".
	Entry string `json:"entry,omitempty"`
	// Runtime: "sequential", "agents", "tcp" or "vtime".
	Runtime string `json:"runtime,omitempty"`
	// Backend: "btree" (default), "slice", "skiplist" or "list".
	Backend string `json:"backend,omitempty"`

	// Workload describes the synthetic request stream; ignored when a
	// trace file drives the run.
	Workload WorkloadSection `json:"workload"`

	// Faults injects deterministic failures (requires the vtime runtime);
	// absent means the paper's lossless transport.
	Faults *FaultsSection `json:"faults,omitempty"`
	// Recovery enables the timeout/retransmission protocol (requires the
	// vtime runtime); absent means the paper-faithful protocol.
	Recovery *RecoverySection `json:"recovery,omitempty"`
}

// FaultsSection mirrors sim.FaultPlan in JSON form.
type FaultsSection struct {
	// Seed drives the fault stream (0 = the run seed).
	Seed int64 `json:"seed,omitempty"`
	// Loss is the i.i.d. message loss probability in [0, 1].
	Loss float64 `json:"loss,omitempty"`
	// Jitter adds uniform random delay in [0, jitter] ticks per transfer.
	Jitter int64 `json:"jitter,omitempty"`
	// Crashes schedules fail-stop proxy failures.
	Crashes []CrashSection `json:"crashes,omitempty"`
}

// CrashSection mirrors sim.Crash in JSON form.
type CrashSection struct {
	Proxy      int   `json:"proxy"`
	At         int64 `json:"at"`
	RestartAt  int64 `json:"restartAt,omitempty"`
	LoseTables bool  `json:"loseTables,omitempty"`
}

// RecoverySection mirrors sim.Recovery in JSON form; zero fields take the
// sim.DefaultRecovery values.
type RecoverySection struct {
	Timeout    int64   `json:"timeout,omitempty"`
	MaxRetries int     `json:"maxRetries,omitempty"`
	Backoff    float64 `json:"backoff,omitempty"`
	PendingTTL int64   `json:"pendingTTL,omitempty"`
}

// WorkloadSection mirrors workload.Config in JSON form.
type WorkloadSection struct {
	Requests     int     `json:"requests"`
	Population   int     `json:"population,omitempty"`
	Alpha        float64 `json:"alpha,omitempty"`
	OneTimerProb float64 `json:"oneTimerProb,omitempty"`
	FillFraction float64 `json:"fillFraction,omitempty"`
	Seed         int64   `json:"seed,omitempty"`
}

// Default returns the repository's reference configuration: the paper's
// setup at 1/10 scale.
func Default() File {
	return File{
		Algorithm:     "adc",
		Proxies:       5,
		SingleTable:   2_000,
		MultipleTable: 2_000,
		CachingTable:  1_000,
		Seed:          1,
		Workload: WorkloadSection{
			Requests:   399_000,
			Population: 1_000,
		},
	}
}

// Load reads and validates a JSON experiment file.
func Load(path string) (File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return File{}, fmt.Errorf("config: read: %w", err)
	}
	return Parse(data)
}

// Parse decodes and validates JSON bytes.
func Parse(data []byte) (File, error) {
	f := Default()
	if err := json.Unmarshal(data, &f); err != nil {
		return File{}, fmt.Errorf("config: parse: %w", err)
	}
	if _, _, err := f.Build(); err != nil {
		return File{}, err
	}
	return f, nil
}

// Save writes the configuration as indented JSON.
func (f File) Save(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("config: marshal: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("config: write: %w", err)
	}
	return nil
}

// Build converts the file into validated cluster and workload configs.
func (f File) Build() (cluster.Config, workload.Config, error) {
	algo, err := cluster.ParseAlgorithm(f.Algorithm)
	if err != nil {
		return cluster.Config{}, workload.Config{}, err
	}

	var entry sim.EntryPolicy
	switch f.Entry {
	case "", "random":
		entry = sim.EntryRandom
	case "round-robin":
		entry = sim.EntryRoundRobin
	case "fixed":
		entry = sim.EntryFixed
	default:
		return cluster.Config{}, workload.Config{}, fmt.Errorf("config: unknown entry policy %q", f.Entry)
	}

	var rt cluster.Runtime
	switch f.Runtime {
	case "", "sequential":
		rt = cluster.RuntimeSequential
	case "agents":
		rt = cluster.RuntimeAgents
	case "tcp":
		rt = cluster.RuntimeTCP
	case "vtime", "virtual":
		rt = cluster.RuntimeVirtualTime
	default:
		return cluster.Config{}, workload.Config{}, fmt.Errorf("config: unknown runtime %q", f.Runtime)
	}

	backend, ok := core.ParseBackend(f.Backend)
	if !ok {
		return cluster.Config{}, workload.Config{}, fmt.Errorf("config: unknown backend %q", f.Backend)
	}

	ccfg := cluster.Config{
		Algorithm:  algo,
		NumProxies: f.Proxies,
		Tables: core.Config{
			SingleSize:   f.SingleTable,
			MultipleSize: f.MultipleTable,
			CachingSize:  f.CachingTable,
			Backend:      backend,
		},
		MaxHops:     f.MaxHops,
		Seed:        f.Seed,
		EntryPolicy: entry,
		Runtime:     rt,
	}
	if f.Faults != nil {
		plan := &sim.FaultPlan{
			Seed:   f.Faults.Seed,
			Loss:   f.Faults.Loss,
			Jitter: f.Faults.Jitter,
		}
		if plan.Seed == 0 {
			plan.Seed = f.Seed
		}
		for _, cr := range f.Faults.Crashes {
			plan.Crashes = append(plan.Crashes, sim.Crash{
				Node:       ids.NodeID(cr.Proxy),
				At:         cr.At,
				RestartAt:  cr.RestartAt,
				LoseTables: cr.LoseTables,
			})
		}
		ccfg.Faults = plan
	}
	if f.Recovery != nil {
		ccfg.Recovery = sim.Recovery{
			Enabled:    true,
			Timeout:    f.Recovery.Timeout,
			MaxRetries: f.Recovery.MaxRetries,
			Backoff:    f.Recovery.Backoff,
			PendingTTL: f.Recovery.PendingTTL,
		}.Normalize()
	}
	if err := ccfg.Validate(); err != nil {
		return cluster.Config{}, workload.Config{}, err
	}

	wcfg := workload.Config{
		TotalRequests:  f.Workload.Requests,
		PopulationSize: f.Workload.Population,
		Alpha:          f.Workload.Alpha,
		OneTimerProb:   f.Workload.OneTimerProb,
		FillFraction:   f.Workload.FillFraction,
		Seed:           f.Workload.Seed,
	}
	if wcfg.Seed == 0 {
		wcfg.Seed = f.Seed
	}
	if err := wcfg.Validate(); err != nil {
		return cluster.Config{}, workload.Config{}, err
	}
	return ccfg, wcfg, nil
}
