package core

import "github.com/adc-sim/adc/internal/ids"

// listTable is the paper-faithful ordered-table backend: a sorted doubly
// linked list searched element-wise, the structure whose cost the paper
// measures in Fig. 15 ("Both accesses are extremely time consuming and a
// more adapted data structure should provide speed-ups", §V.3.3). Every
// operation is O(n) with pointer-chasing constants; it exists for the
// timing reproduction and the backend ablation, not for production use.
type listTable struct {
	capacity   int
	head, tail *listNode // sentinels; ascending key order between them
	size       int
}

type listNode struct {
	entry      *Entry
	prev, next *listNode
}

var _ Ordered = (*listTable)(nil)

func newListTable(capacity int) *listTable {
	t := &listTable{
		capacity: capacity,
		head:     &listNode{},
		tail:     &listNode{},
	}
	t.head.next = t.tail
	t.tail.prev = t.head
	return t
}

func (t *listTable) Len() int { return t.size }
func (t *listTable) Cap() int { return t.capacity }

func (t *listTable) find(obj ids.ObjectID) *listNode {
	for n := t.head.next; n != t.tail; n = n.next {
		if n.entry.Object == obj {
			return n
		}
	}
	return nil
}

func (t *listTable) Contains(obj ids.ObjectID) bool { return t.find(obj) != nil }

func (t *listTable) Get(obj ids.ObjectID) *Entry {
	if n := t.find(obj); n != nil {
		return n.entry
	}
	return nil
}

func (t *listTable) Remove(obj ids.ObjectID) *Entry {
	n := t.find(obj)
	if n == nil {
		return nil
	}
	t.unlink(n)
	return n.entry
}

func (t *listTable) Insert(e *Entry) *Entry {
	if t.capacity == 0 {
		return e
	}
	// Walk to the first node not less than e and insert before it.
	at := t.head.next
	for at != t.tail && less(at.entry, e) {
		at = at.next
	}
	n := &listNode{entry: e, prev: at.prev, next: at}
	at.prev.next = n
	at.prev = n
	t.size++
	if t.size > t.capacity {
		return t.RemoveWorst()
	}
	return nil
}

func (t *listTable) RemoveWorst() *Entry {
	if t.size == 0 {
		return nil
	}
	n := t.tail.prev
	t.unlink(n)
	return n.entry
}

func (t *listTable) WorstKey() (int64, bool) {
	if t.size == 0 {
		return 0, false
	}
	return t.tail.prev.entry.Key(), true
}

func (t *listTable) Entries() []*Entry {
	out := make([]*Entry, 0, t.size)
	for n := t.head.next; n != t.tail; n = n.next {
		out = append(out, n.entry)
	}
	return out
}

func (t *listTable) unlink(n *listNode) {
	n.prev.next = n.next
	n.next.prev = n.prev
	n.prev, n.next = nil, nil
	t.size--
}
