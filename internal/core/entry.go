// Package core implements the data structures at the heart of Adaptive
// Distributed Caching: the mapping-table entry with its two-request moving
// average (paper Fig. 9), the aging rule (Fig. 4), the LRU single-table
// (§III.3.1), the ordered multiple- and caching tables (§III.3.2–3.3), and
// the Update_Entry promotion/demotion procedure that ties them together
// (Fig. 8).
//
// # Time
//
// All times are logical: each proxy's local clock is "the counter for the
// received requests" (§IV.1), an int64 that increments once per incoming
// request. Averages are therefore measured in requests, not seconds.
//
// # Aging without re-sorting
//
// The paper ages every entry by T_age = (T_avg + (T_now − T_last)) / 2 and
// observes that "all objects age at the same pace and an established table
// order remains the same during the aging process" (§III.4). That holds
// because comparing aged values at a common instant `now`,
//
//	avg₁ + (now − last₁)  <  avg₂ + (now − last₂)
//	           ⇕
//	   avg₁ − last₁       <     avg₂ − last₂
//
// so the static key avg − last orders entries identically at every instant.
// The ordered tables sort by that key and never need re-sorting as time
// advances; only an update to an entry (which changes avg and last) requires
// a remove-and-reinsert.
package core

import (
	"fmt"

	"github.com/adc-sim/adc/internal/ids"
)

// Entry is one row of a mapping table, mirroring the columns of the paper's
// sample tables (Figs. 1–3): OBJ-ID, PROXY, LAST, AVG, HITS.
type Entry struct {
	// Object is the mapped object ID (the paper's URL column).
	Object ids.ObjectID

	// Location is the proxy this object is mapped to. When it equals the
	// owning proxy's own ID it plays the paper's "THIS" role: the proxy
	// is responsible for the object and forwards unresolved requests for
	// it to the origin server (§III.3.2).
	Location ids.NodeID

	// Last is the proxy-local logical time of the most recent request
	// for this object (the LAST column).
	Last int64

	// Avg is the moving average of the inter-request time over the last
	// two requests (the AVG column). 0 until the second request.
	Avg int64

	// Hits counts how many times the object has been requested here.
	Hits int64

	// Replicas is the bounded set of additional proxies known to hold the
	// object, beyond Location — the hot-object replication extension
	// (nil in stock ADC, where backwarding converges every object to one
	// location). The set is kept sorted ascending and never contains
	// Location, so routing and advertisement stay deterministic. Replicas
	// does not participate in Key, so it may be mutated while the entry
	// sits in an ordered table.
	Replicas []ids.NodeID

	// noAge freezes the aging term in Key for the aging-off ablation
	// (Config.AgingOff); entries of one proxy all share the setting.
	noAge bool

	// prev/next are intrusive list links used by whichever list-shaped
	// table currently holds the entry (the LRU single-table, the
	// paper-faithful sorted list backend, or the LRU ablation table).
	// An entry lives in at most one table at a time, so one pair of
	// links suffices and no per-table node allocation is ever needed.
	// Unlinking always nils them.
	prev, next *Entry
}

// NewEntry creates a first-sighting entry, initialized exactly as the
// paper's Part 4 of Update_Entry: AVG 0, HITS 1, LAST = now.
func NewEntry(obj ids.ObjectID, loc ids.NodeID, now int64) *Entry {
	return &Entry{Object: obj, Location: loc, Last: now, Avg: 0, Hits: 1}
}

// CalcAverage folds the current access at logical time now into the entry,
// following the paper's Calc_Average (Fig. 9): the second access seeds the
// average with the raw gap; later accesses use the two-point moving average
// (avg + gap) / 2. It finishes by stamping LAST and counting the hit.
func (e *Entry) CalcAverage(now int64) {
	gap := now - e.Last
	if e.Hits <= 1 {
		e.Avg = gap
	} else {
		e.Avg = (e.Avg + gap) / 2
	}
	e.Hits++
	e.Last = now
}

// Key is the static sort key avg − last (see the package comment); smaller
// keys mean more frequently requested, fresher objects. Ordered tables sort
// ascending by Key, so the "worst case currently residing in the table"
// (§III.4) is the entry with the largest Key.
//
// The key must not change while an entry is stored in an ordered table;
// Tables always removes an entry before mutating it.
//
// With aging disabled (the ablation) the key is the raw average: objects
// hot in the distant past then never expire, which is exactly the failure
// mode §III.4's aging rule exists to prevent.
func (e *Entry) Key() int64 {
	if e.noAge {
		return e.Avg
	}
	return e.Avg - e.Last
}

// AgedAverage evaluates the paper's aging formula (Fig. 4) at time now:
// (avg + (now − last)) / 2. It is what table dumps display; ordering by it
// is equivalent to ordering by Key.
func (e *Entry) AgedAverage(now int64) int64 {
	return (e.Avg + (now - e.Last)) / 2
}

// less orders entries ascending by Key, breaking ties by ObjectID so table
// order — and with it the whole simulation — is fully deterministic.
func less(a, b *Entry) bool {
	if a.Key() != b.Key() {
		return a.Key() < b.Key()
	}
	return a.Object < b.Object
}

// String implements fmt.Stringer in the paper's row layout.
func (e *Entry) String() string {
	return fmt.Sprintf("%-14s %-10s %6d %6d %6d",
		e.Object, e.Location, e.Last, e.Avg, e.Hits)
}

// Kind identifies which mapping table an entry lives in.
type Kind int

// Table kinds, ordered by lookup priority in Update_Entry (Fig. 8).
const (
	// KindNone means the object is in no table.
	KindNone Kind = iota
	// KindCaching is the caching table: entries whose objects are
	// actually stored in the local cache.
	KindCaching
	// KindMultiple is the multiple-table: objects seen at least twice.
	KindMultiple
	// KindSingle is the LRU single-table: first sightings.
	KindSingle
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindCaching:
		return "caching"
	case KindMultiple:
		return "multiple"
	case KindSingle:
		return "single"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}
