package promtext

import (
	"math"
	"strings"
	"testing"
)

// TestPromtextRoundTrip writes a document with every family type and
// parses it back, checking values and types survive.
func TestPromtextRoundTrip(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b)
	w.Counter("adc_requests_total", "Total requests.")
	w.Sample(42)
	w.Gauge("adc_queue_depth", "Waiters.")
	w.Sample(3, L("proxy", "Proxy[0]"))
	w.Sample(7, L("proxy", "Proxy[1]"))
	w.HistogramFamily("adc_stage_latency_seconds", "Per-stage latency.")
	w.Histogram([]float64{0.001, 0.01}, []uint64{5, 9}, 10, 0.123, L("stage", "forward"))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	d, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parse: %v\noutput:\n%s", err, b.String())
	}
	if v, ok := d.Value("adc_requests_total"); !ok || v != 42 {
		t.Errorf("counter = %v, %v; want 42, true", v, ok)
	}
	if v, ok := d.Value("adc_queue_depth", L("proxy", "Proxy[1]")); !ok || v != 7 {
		t.Errorf("gauge{Proxy[1]} = %v, %v; want 7, true", v, ok)
	}
	if got := d.Families["adc_stage_latency_seconds"].Type; got != TypeHistogram {
		t.Errorf("histogram family type = %q", got)
	}
	buckets := d.Buckets("adc_stage_latency_seconds", L("stage", "forward"))
	if len(buckets) != 3 {
		t.Fatalf("buckets = %v, want 3 (two bounds + Inf)", buckets)
	}
	if !math.IsInf(buckets[2].LE, 1) || buckets[2].Cum != 10 {
		t.Errorf("+Inf bucket = %+v, want cum 10", buckets[2])
	}
	if err := Lint(strings.NewReader(b.String())); err != nil {
		t.Errorf("lint: %v", err)
	}
}

// TestPromtextLabelEscaping round-trips label values containing every
// escapable character, plus help text with newlines.
func TestPromtextLabelEscaping(t *testing.T) {
	hostile := "a\\b\"c\nd"
	var b strings.Builder
	w := NewWriter(&b)
	w.Gauge("adc_test", "line one\nline \\two")
	w.Sample(1, L("path", hostile))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "\n") != 3 {
		t.Fatalf("raw newline leaked into exposition:\n%q", out)
	}
	d, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatalf("parse: %v\n%q", err, out)
	}
	if _, ok := d.Value("adc_test", L("path", hostile)); !ok {
		t.Errorf("escaped label did not round-trip; samples: %+v", d.Families["adc_test"].Samples)
	}
	if got := d.Families["adc_test"].Help; got != "line one\nline \\two" {
		t.Errorf("help round-trip = %q", got)
	}
}

// TestPromtextEmptySeries: a declared family with zero samples is valid
// exposition and must parse and lint cleanly.
func TestPromtextEmptySeries(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b)
	w.Counter("adc_never_incremented_total", "Declared but unsampled.")
	w.HistogramFamily("adc_empty_hist", "No series yet.")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	d, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if f := d.Families["adc_never_incremented_total"]; f == nil || len(f.Samples) != 0 {
		t.Errorf("empty counter family = %+v", f)
	}
	if err := Lint(strings.NewReader(b.String())); err != nil {
		t.Errorf("lint rejects empty families: %v", err)
	}
}

// TestPromtextSpecialValues covers +Inf/-Inf/NaN sample values.
func TestPromtextSpecialValues(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b)
	w.Gauge("adc_special", "")
	w.Sample(math.Inf(1), L("k", "pinf"))
	w.Sample(math.Inf(-1), L("k", "ninf"))
	w.Sample(math.NaN(), L("k", "nan"))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	d, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, b.String())
	}
	if v, _ := d.Value("adc_special", L("k", "pinf")); !math.IsInf(v, 1) {
		t.Errorf("pinf = %v", v)
	}
	if v, _ := d.Value("adc_special", L("k", "ninf")); !math.IsInf(v, -1) {
		t.Errorf("ninf = %v", v)
	}
	if v, _ := d.Value("adc_special", L("k", "nan")); !math.IsNaN(v) {
		t.Errorf("nan = %v", v)
	}
}

// TestLintCatchesBrokenHistograms feeds hand-built violations to Lint.
func TestLintCatchesBrokenHistograms(t *testing.T) {
	cases := map[string]string{
		"missing +Inf": `# TYPE h histogram
h_bucket{le="1"} 3
h_sum 1
h_count 3
`,
		"count mismatch": `# TYPE h histogram
h_bucket{le="1"} 3
h_bucket{le="+Inf"} 3
h_sum 1
h_count 4
`,
		"non-monotone": `# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="2"} 3
h_bucket{le="+Inf"} 5
h_sum 1
h_count 5
`,
		"missing sum": `# TYPE h histogram
h_bucket{le="+Inf"} 1
h_count 1
`,
		"missing count": `# TYPE h histogram
h_bucket{le="+Inf"} 1
h_sum 1
`,
	}
	for name, doc := range cases {
		if err := Lint(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: lint accepted a broken histogram", name)
		}
	}
}

// TestParseRejectsMalformed checks the strict half of the parser.
func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		`m{l="x} 1`,            // unterminated label value
		`m{l="x"`,              // unterminated label block
		`m{l="a\q"} 1`,         // unknown escape
		`m{="x"} 1`,            // empty label name
		`m`,                    // no value
		`m 1e`,                 // bad value
		"# TYPE m frequencies", // unknown type
		`{l="x"} 1`,            // no metric name
	}
	for _, doc := range bad {
		if _, err := Parse(strings.NewReader(doc)); err == nil {
			t.Errorf("parse accepted %q", doc)
		}
	}
}

// TestParseTolerations: timestamps, free comments, blank lines, and
// histogram children appearing without a declared family (they stay
// standalone untyped families rather than erroring).
func TestParseTolerations(t *testing.T) {
	doc := `
# scraped from proxy 3

up 1 1700000000000
# random comment
orphan_bucket{le="+Inf"} 2
`
	d, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if v, ok := d.Value("up"); !ok || v != 1 {
		t.Errorf("up = %v, %v", v, ok)
	}
	if _, ok := d.Families["orphan_bucket"]; !ok {
		t.Errorf("undeclared _bucket sample should form its own family; got %v", d.Order)
	}
}

// TestHistQuantile checks interpolation and the +Inf clamp.
func TestHistQuantile(t *testing.T) {
	buckets := []Bucket{{LE: 10, Cum: 0}, {LE: 20, Cum: 10}, {LE: 40, Cum: 10}, {LE: math.Inf(1), Cum: 20}}
	// Median: 10th of 20 observations, all of (10,20] — lands at its top.
	if got := HistQuantile(buckets, 0.5); got != 20 {
		t.Errorf("p50 = %v, want 20", got)
	}
	// p99 lands in the +Inf bucket: clamp to the highest finite bound.
	if got := HistQuantile(buckets, 0.99); got != 40 {
		t.Errorf("p99 = %v, want 40 (clamped)", got)
	}
	if got := HistQuantile(nil, 0.5); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := HistQuantile([]Bucket{{LE: math.Inf(1), Cum: 0}}, 0.5); got != 0 {
		t.Errorf("zero-count = %v", got)
	}
}
