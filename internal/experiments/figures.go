package experiments

import (
	"context"
	"fmt"
	"time"

	"github.com/adc-sim/adc/internal/cluster"
	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/metrics"
)

// Comparison holds the data behind Figs. 11 (hit rate over the request
// stream) and 12 (hops over the request stream) for ADC versus the
// hashing baseline, plus run summaries.
type Comparison struct {
	// ADC and Hashing are time series sampled every SampleEvery
	// requests; Point.HitRate/Hops are the windowed values the paper
	// plots, Cum* the running totals.
	ADC     []metrics.Point
	Hashing []metrics.Point
	// CHash is filled when the extension baseline is requested.
	CHash []metrics.Point

	// Summaries of the full runs.
	ADCSummary     metrics.Summary
	HashingSummary metrics.Summary
	CHashSummary   metrics.Summary

	// FillEnd and Phase2End are the workload's phase boundaries in
	// requests, for annotating the three phases visible in Fig. 11.
	FillEnd   int
	Phase2End int

	// SampleEvery is the series sampling interval used.
	SampleEvery uint64
}

// CompareOptions tweak the Figs. 11–12 experiment.
type CompareOptions struct {
	// IncludeCHash also runs the consistent-hashing extension baseline.
	IncludeCHash bool
	// SampleEvery overrides the series sampling interval
	// (default: one point per moving-average window).
	SampleEvery uint64
}

// Compare runs ADC and the hashing baseline over the profile's workload —
// the experiment behind Fig. 11 ("Hit Rate – ADC vs. Hashing") and Fig. 12
// ("Hops – ADC vs. Hashing").
func Compare(p Profile, opts CompareOptions) (*Comparison, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	sampleEvery := opts.SampleEvery
	if sampleEvery == 0 {
		sampleEvery = uint64(p.Window)
	}

	tr, err := p.trace()
	if err != nil {
		return nil, err
	}
	fillEnd, phase2End := tr.Boundaries()
	out := &Comparison{
		FillEnd:     fillEnd,
		Phase2End:   phase2End,
		SampleEvery: sampleEvery,
	}

	algos := []cluster.Algorithm{cluster.ADC, cluster.CARP}
	if opts.IncludeCHash {
		algos = append(algos, cluster.CHash)
	}
	results := make([]*cluster.Result, len(algos))
	err = p.forEach("compare", len(algos), func(_ context.Context, i int) (uint64, error) {
		res, err := p.run(p.ClusterConfig(algos[i], p.Tables(), sampleEvery))
		if err != nil {
			return 0, fmt.Errorf("experiments: %v run: %w", algos[i], err)
		}
		results[i] = res
		return res.Delivered, nil
	})
	if err != nil {
		return nil, err
	}
	for i, algo := range algos {
		res := results[i]
		switch algo {
		case cluster.ADC:
			out.ADC = res.Series
			out.ADCSummary = res.Summary
		case cluster.CARP:
			out.Hashing = res.Series
			out.HashingSummary = res.Summary
		case cluster.CHash:
			out.CHash = res.Series
			out.CHashSummary = res.Summary
		}
	}
	return out, nil
}

// TableName identifies the swept table in Figs. 13–15.
type TableName string

// The three swept tables.
const (
	TableSingle   TableName = "single"
	TableMultiple TableName = "multiple"
	TableCaching  TableName = "caching"
)

// AllTables lists the swept tables in the paper's presentation order.
func AllTables() []TableName {
	return []TableName{TableCaching, TableMultiple, TableSingle}
}

// SweepPoint is one simulation of the parameter study: one table resized,
// the other two held at the reference configuration (§V.3: "when we
// changed the values for the caching table, we kept the size of the
// single and multiple-table at 20k entries").
type SweepPoint struct {
	// Table is the swept table.
	Table TableName
	// Size is the swept table's capacity for this run.
	Size int
	// HitRate is the hit rate over the request phases (fill excluded),
	// which is the regime the paper's Fig. 13 values describe.
	HitRate float64
	// CumHitRate is the whole-run hit rate including the fill phase.
	CumHitRate float64
	// Hops is the mean hops per request over the request phases.
	Hops float64
	// Elapsed is the wall-clock duration of the whole run.
	Elapsed time.Duration
}

// SweepOptions tweak the Figs. 13–15 experiments.
type SweepOptions struct {
	// Sizes are the paper-scale capacities to sweep; they are scaled by
	// the profile like everything else. Default 5k…30k step 5k (§V.3).
	Sizes []int
	// Tables restricts the sweep; default all three.
	Tables []TableName
	// PaperFaithfulTiming switches the single-table to O(n) scan and
	// the ordered tables to the O(n) linked list, reproducing the data
	// structures whose cost Fig. 15 measures.
	PaperFaithfulTiming bool
	// Requests overrides the paper-scale request count (scaled by the
	// profile). The timing sweep uses a shorter trace by default.
	Requests int
}

// DefaultSweepSizes is the paper's sweep grid (§V.3).
func DefaultSweepSizes() []int { return []int{5_000, 10_000, 15_000, 20_000, 25_000, 30_000} }

// Sweep runs the table-size parameter study behind Fig. 13 ("Hit Rates by
// Table Size"), Fig. 14 ("Hops by Table Size") and — with
// PaperFaithfulTiming — Fig. 15 ("Processing Time by Table Size").
func Sweep(p Profile, opts SweepOptions) ([]SweepPoint, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	sizes := opts.Sizes
	if len(sizes) == 0 {
		sizes = DefaultSweepSizes()
	}
	tables := opts.Tables
	if len(tables) == 0 {
		tables = AllTables()
	}

	type job struct {
		tbl  TableName
		size int
	}
	jobs := make([]job, 0, len(tables)*len(sizes))
	for _, tbl := range tables {
		for _, size := range sizes {
			jobs = append(jobs, job{tbl, size})
		}
	}
	out := make([]SweepPoint, len(jobs))
	err := p.forEach("sweep", len(jobs), func(_ context.Context, i int) (uint64, error) {
		pt, delivered, err := p.sweepOne(jobs[i].tbl, jobs[i].size, opts)
		if err != nil {
			return 0, err
		}
		out[i] = pt
		return delivered, nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (p Profile) sweepOne(tbl TableName, paperSize int, opts SweepOptions) (SweepPoint, uint64, error) {
	tables := p.Tables()
	size := p.scaled(paperSize)
	switch tbl {
	case TableSingle:
		tables.SingleSize = size
	case TableMultiple:
		tables.MultipleSize = size
	case TableCaching:
		tables.CachingSize = size
	default:
		return SweepPoint{}, 0, fmt.Errorf("experiments: unknown table %q", tbl)
	}
	if opts.PaperFaithfulTiming {
		tables.SingleScan = true
		tables.Backend = core.BackendList
	}

	wcfg := p.WorkloadConfig()
	if opts.Requests > 0 {
		wcfg.TotalRequests = p.scaled(opts.Requests)
	}
	tr, err := p.traceFor(wcfg)
	if err != nil {
		return SweepPoint{}, 0, err
	}
	fillEnd, _ := tr.Boundaries()

	// Sample exactly at the fill boundary so post-fill rates are exact.
	sampleEvery := uint64(fillEnd)
	ccfg := p.ClusterConfig(cluster.ADC, tables, sampleEvery)
	res, err := cluster.Run(ccfg, tr.Cursor())
	if err != nil {
		return SweepPoint{}, 0, fmt.Errorf("experiments: sweep %s=%d: %w", tbl, size, err)
	}

	hit, hops := postFillRates(res, fillEnd)
	return SweepPoint{
		Table:      tbl,
		Size:       size,
		HitRate:    hit,
		CumHitRate: res.Summary.HitRate,
		Hops:       hops,
		Elapsed:    res.Elapsed,
	}, res.Delivered, nil
}

// postFillRates derives hit and hop rates over the request phases from the
// cumulative series: the first sample falls exactly on the fill boundary.
func postFillRates(res *cluster.Result, fillEnd int) (hit, hops float64) {
	total := float64(res.Summary.Requests)
	cumHitsEnd := res.Summary.HitRate * total
	cumHopsEnd := res.Summary.Hops * total
	for _, pt := range res.Series {
		if pt.Requests == uint64(fillEnd) {
			fillReqs := float64(pt.Requests)
			post := total - fillReqs
			if post <= 0 {
				break
			}
			hit = (cumHitsEnd - pt.CumHitRate*fillReqs) / post
			hops = (cumHopsEnd - pt.CumHops*fillReqs) / post
			return hit, hops
		}
	}
	// No exact boundary sample (custom sampling): fall back to
	// whole-run rates.
	return res.Summary.HitRate, res.Summary.Hops
}
