package sim

import (
	"testing"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/msg"
	"github.com/adc-sim/adc/internal/trace"
)

// These tests probe the paper's load-bearing transport assumption:
// "we don't expect the loss of messages and ... always either one of the
// proxy objects or the actual origin server will finally resolve the
// request" (§III.1). The protocol has no timeouts or retransmissions, so
// a single lost message strands its request chain permanently — the
// fault-injection engine makes that concrete and measurable.

func TestLossStrandsClosedLoop(t *testing.T) {
	eng := NewVEngine(LatencyModel{ClientProxy: 1})
	echo := &delayProbe{id: 0, reply: true}
	if err := eng.Register(echo); err != nil {
		t.Fatal(err)
	}
	objs := make([]ids.ObjectID, 10)
	cl, err := NewClient(ClientConfig{
		Source:  trace.NewSliceSource(objs),
		Proxies: []ids.NodeID{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(cl); err != nil {
		t.Fatal(err)
	}
	// Drop the 6th network transfer (the 3rd request's request leg).
	n := 0
	eng.SetDropFilter(func(m msg.Message) bool {
		n++
		return n == 6
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// The engine drains (no livelock), but the closed loop is stranded:
	// the client never completes its trace and the loss is visible.
	if cl.Done() {
		t.Error("client completed despite a lost message — the protocol has no retransmission")
	}
	if eng.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", eng.Dropped())
	}
	if got := cl.Collector().Requests(); got != 2 {
		t.Errorf("completed %d requests before the loss, want 2", got)
	}
}

func TestLossStrandsOpenLoopPartially(t *testing.T) {
	// Open-loop injection keeps going past a loss (arrivals are timer
	// driven), so exactly the chains whose messages were dropped are
	// missing — loss is proportional, not total.
	eng := NewVEngine(LatencyModel{ClientProxy: 1})
	echo := &delayProbe{id: 0, reply: true}
	if err := eng.Register(echo); err != nil {
		t.Fatal(err)
	}
	objs := make([]ids.ObjectID, 20)
	cl, err := NewOpenLoopClient(OpenLoopConfig{
		Source:        trace.NewSliceSource(objs),
		Proxies:       []ids.NodeID{0},
		IntervalTicks: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(cl); err != nil {
		t.Fatal(err)
	}
	// Drop every 7th network transfer.
	n := 0
	eng.SetDropFilter(func(m msg.Message) bool {
		n++
		return n%7 == 0
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if cl.Done() {
		t.Error("open-loop client reported done despite stranded requests")
	}
	if cl.Outstanding() == 0 {
		t.Error("expected stranded outstanding requests after losses")
	}
	completed := cl.Collector().Requests()
	if completed == 0 || completed >= 20 {
		t.Errorf("completed = %d, want partial completion", completed)
	}
	if completed+uint64(cl.Outstanding()) != 20 {
		t.Errorf("completed %d + outstanding %d != injected 20",
			completed, cl.Outstanding())
	}
}

func TestNoLossMeansNoStranding(t *testing.T) {
	// Control: with the filter installed but never firing, everything
	// completes — the stranding above is caused by loss alone.
	eng := NewVEngine(LatencyModel{ClientProxy: 1})
	echo := &delayProbe{id: 0, reply: true}
	if err := eng.Register(echo); err != nil {
		t.Fatal(err)
	}
	cl, err := NewClient(ClientConfig{
		Source:  trace.NewSliceSource(make([]ids.ObjectID, 10)),
		Proxies: []ids.NodeID{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(cl); err != nil {
		t.Fatal(err)
	}
	eng.SetDropFilter(func(msg.Message) bool { return false })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !cl.Done() || eng.Dropped() != 0 {
		t.Errorf("control run wrong: done=%v dropped=%d", cl.Done(), eng.Dropped())
	}
}
