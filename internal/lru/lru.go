// Package lru implements a bounded least-recently-used cache.
//
// The CARP baseline stores received objects "replacing existing information
// based on the LRU algorithm" (§V.1.1), and the paper's single-table is "the
// well-known LRU algorithm" (§III.3.1). This implementation is the O(1)
// map-plus-intrusive-list variant; the paper's own linked-list-with-scan
// variant (whose O(n) cost shows up in Fig. 15) is available in
// internal/core as the "list" table backend for the ablation study.
package lru

// Cache is a fixed-capacity LRU cache from K to V. The zero value is not
// usable; construct with New. Cache is not safe for concurrent use: every
// node in the simulator owns its caches exclusively (agents share nothing
// and communicate by message passing), so locking would be pure overhead.
type Cache[K comparable, V any] struct {
	capacity int
	items    map[K]*node[K, V]
	// head/tail of the recency list: head.next is most recent,
	// tail.prev is least recent. Sentinel nodes avoid nil checks.
	head, tail *node[K, V]

	// onEvict, when set, observes each evicted entry.
	onEvict func(K, V)
}

type node[K comparable, V any] struct {
	key        K
	value      V
	prev, next *node[K, V]
}

// New returns an empty cache holding at most capacity entries.
// Capacity must be positive.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity <= 0 {
		panic("lru: capacity must be positive")
	}
	c := &Cache[K, V]{
		capacity: capacity,
		items:    make(map[K]*node[K, V], capacity),
		head:     &node[K, V]{},
		tail:     &node[K, V]{},
	}
	c.head.next = c.tail
	c.tail.prev = c.head
	return c
}

// OnEvict registers a callback invoked for every entry displaced by Put or
// removed by RemoveOldest (but not by explicit Remove).
func (c *Cache[K, V]) OnEvict(fn func(K, V)) { c.onEvict = fn }

// Get returns the value for key and marks it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	if n, ok := c.items[key]; ok {
		c.moveToFront(n)
		return n.value, true
	}
	var zero V
	return zero, false
}

// Peek returns the value for key without touching recency.
func (c *Cache[K, V]) Peek(key K) (V, bool) {
	if n, ok := c.items[key]; ok {
		return n.value, true
	}
	var zero V
	return zero, false
}

// Contains reports whether key is cached, without touching recency.
func (c *Cache[K, V]) Contains(key K) bool {
	_, ok := c.items[key]
	return ok
}

// Put inserts or updates key and marks it most recently used. It returns
// true if an old entry was evicted to make room.
func (c *Cache[K, V]) Put(key K, value V) bool {
	if n, ok := c.items[key]; ok {
		n.value = value
		c.moveToFront(n)
		return false
	}
	evicted := false
	if len(c.items) >= c.capacity {
		c.evictOldest()
		evicted = true
	}
	n := &node[K, V]{key: key, value: value}
	c.items[key] = n
	c.insertFront(n)
	return evicted
}

// Remove deletes key, reporting whether it was present.
func (c *Cache[K, V]) Remove(key K) bool {
	n, ok := c.items[key]
	if !ok {
		return false
	}
	c.unlink(n)
	delete(c.items, key)
	return true
}

// RemoveOldest evicts and returns the least recently used entry.
func (c *Cache[K, V]) RemoveOldest() (K, V, bool) {
	if len(c.items) == 0 {
		var zk K
		var zv V
		return zk, zv, false
	}
	n := c.tail.prev
	c.unlink(n)
	delete(c.items, n.key)
	if c.onEvict != nil {
		c.onEvict(n.key, n.value)
	}
	return n.key, n.value, true
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int { return len(c.items) }

// Cap returns the configured capacity.
func (c *Cache[K, V]) Cap() int { return c.capacity }

// Keys returns all keys from most to least recently used.
func (c *Cache[K, V]) Keys() []K {
	out := make([]K, 0, len(c.items))
	for n := c.head.next; n != c.tail; n = n.next {
		out = append(out, n.key)
	}
	return out
}

func (c *Cache[K, V]) evictOldest() {
	n := c.tail.prev
	c.unlink(n)
	delete(c.items, n.key)
	if c.onEvict != nil {
		c.onEvict(n.key, n.value)
	}
}

func (c *Cache[K, V]) insertFront(n *node[K, V]) {
	n.prev = c.head
	n.next = c.head.next
	c.head.next.prev = n
	c.head.next = n
}

func (c *Cache[K, V]) moveToFront(n *node[K, V]) {
	c.unlink(n)
	c.insertFront(n)
}

func (c *Cache[K, V]) unlink(n *node[K, V]) {
	n.prev.next = n.next
	n.next.prev = n.prev
	n.prev, n.next = nil, nil
}
