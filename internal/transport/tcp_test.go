package transport

import (
	"sync"
	"testing"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/metrics"
	"github.com/adc-sim/adc/internal/msg"
	"github.com/adc-sim/adc/internal/sim"
	"github.com/adc-sim/adc/internal/trace"
)

// echoNode resolves every request itself.
type echoNode struct {
	id ids.NodeID

	mu   sync.Mutex
	seen int
}

func (n *echoNode) ID() ids.NodeID { return n.id }
func (n *echoNode) Handle(ctx sim.Context, m msg.Message) {
	req, ok := m.(*msg.Request)
	if !ok {
		return
	}
	n.mu.Lock()
	n.seen++
	n.mu.Unlock()
	rep := msg.ReplyTo(req)
	rep.Resolver = n.id
	rep.To = req.Client
	ctx.Send(rep)
}

func (n *echoNode) count() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.seen
}

func TestRegisterValidation(t *testing.T) {
	nw := NewNetwork()
	if err := nw.Register(&echoNode{id: 1}); err != nil {
		t.Fatal(err)
	}
	if err := nw.Register(&echoNode{id: 1}); err == nil {
		t.Error("duplicate registration must fail")
	}
	if _, ok := nw.Addr(1); !ok {
		t.Error("registered node must have an address")
	}
	if _, ok := nw.Addr(9); ok {
		t.Error("unregistered node must not have an address")
	}
}

func TestClosedLoopOverTCP(t *testing.T) {
	nw := NewNetwork()
	node := &echoNode{id: 0}
	if err := nw.Register(node); err != nil {
		t.Fatal(err)
	}

	objs := make([]ids.ObjectID, 50)
	for i := range objs {
		objs[i] = ids.ObjectID(i)
	}
	col := metrics.NewCollector(metrics.WithSampleEvery(0))
	done := make(chan struct{})
	cl, err := sim.NewClient(sim.ClientConfig{
		Source:    trace.NewSliceSource(objs),
		Proxies:   []ids.NodeID{0},
		Collector: col,
		OnDone:    func() { close(done) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Register(cl); err != nil {
		t.Fatal(err)
	}

	if err := nw.Run(done); err != nil {
		t.Fatal(err)
	}
	if !cl.Done() {
		t.Fatal("client did not finish over TCP")
	}
	if col.Requests() != 50 {
		t.Errorf("recorded %d requests, want 50", col.Requests())
	}
	if node.count() != 50 {
		t.Errorf("node saw %d requests, want 50", node.count())
	}
	// Hop accounting must match the in-memory engines: request + reply.
	if got := col.CumHops(); got != 2 {
		t.Errorf("CumHops = %v, want 2", got)
	}
}

func TestRunTwiceFails(t *testing.T) {
	nw := NewNetwork()
	done := make(chan struct{})
	close(done)
	if err := nw.Run(done); err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(done); err == nil {
		t.Error("second Run must fail")
	}
}

func TestRegisterAfterRunFails(t *testing.T) {
	nw := NewNetwork()
	done := make(chan struct{})
	close(done)
	if err := nw.Run(done); err != nil {
		t.Fatal(err)
	}
	if err := nw.Register(&echoNode{id: 2}); err == nil {
		t.Error("Register after Run must fail")
	}
}
