package workload

import (
	"sort"

	"github.com/adc-sim/adc/internal/ids"
)

// TraceStats summarises a request stream — the numbers one needs to judge
// whether a workload is cacheable at all (recurrence share) and how
// concentrated its popularity is (top-k shares). cmd/adcgen -stats prints
// them; EXPERIMENTS.md's tuning notes cite them.
type TraceStats struct {
	// Requests is the stream length.
	Requests int
	// Distinct is the number of unique objects.
	Distinct int
	// OneTimers is the number of objects requested exactly once.
	OneTimers int
	// RecurringShare is the fraction of requests going to objects that
	// are requested more than once — the hit-rate ceiling of an
	// infinitely large warm cache.
	RecurringShare float64
	// Top1Share, Top10Share are the request shares of the most popular
	// 1 % and 10 % of objects (popularity concentration).
	Top1Share  float64
	Top10Share float64
	// MaxObjectRequests is the request count of the hottest object.
	MaxObjectRequests int
}

// Analyze drains src and computes its statistics. The source is consumed;
// generators can be Reset afterwards.
func Analyze(src Source) TraceStats {
	counts := make(map[ids.ObjectID]int)
	n := 0
	for {
		obj, ok := src.Next()
		if !ok {
			break
		}
		counts[obj]++
		n++
	}
	st := TraceStats{Requests: n, Distinct: len(counts)}
	if n == 0 {
		return st
	}

	freqs := make([]int, 0, len(counts))
	recurring := 0
	for _, c := range counts {
		freqs = append(freqs, c)
		if c == 1 {
			st.OneTimers++
		} else {
			recurring += c
		}
		if c > st.MaxObjectRequests {
			st.MaxObjectRequests = c
		}
	}
	st.RecurringShare = float64(recurring) / float64(n)

	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	topShare := func(frac float64) float64 {
		k := int(float64(len(freqs)) * frac)
		if k < 1 {
			k = 1
		}
		sum := 0
		for _, c := range freqs[:k] {
			sum += c
		}
		return float64(sum) / float64(n)
	}
	st.Top1Share = topShare(0.01)
	st.Top10Share = topShare(0.10)
	return st
}
