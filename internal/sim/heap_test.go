package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestEventQueueTieBreakProperty is the invariant the parallel engine's
// cross-shard merge relies on: among equal-timestamp events, the heap pops
// in ascending sequence-number order — i.e. deterministic insertion order,
// regardless of heap shape. The test drives randomized workloads with heavy
// timestamp collisions and interleaved pushes/pops against a stable-sort
// reference.
func TestEventQueueTieBreakProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0x4EAB))
	for trial := 0; trial < 200; trial++ {
		// Few distinct timestamps over many events forces long tie runs.
		nEvents := 1 + rng.Intn(500)
		nStamps := 1 + rng.Intn(8)
		var q eventQueue
		var ref []event
		var seq uint64
		pushOne := func() {
			seq++
			e := event{at: int64(rng.Intn(nStamps)), seq: seq}
			q.push(e)
			ref = append(ref, e)
		}
		var popped []event
		for i := 0; i < nEvents; i++ {
			pushOne()
			// Occasionally pop mid-stream so the heap is exercised in
			// mixed push/pop shapes, not just bulk-load-then-drain.
			if rng.Intn(4) == 0 && q.Len() > 0 {
				popped = append(popped, q.pop())
			}
		}
		for q.Len() > 0 {
			popped = append(popped, q.pop())
		}

		// Reference order: stable sort by timestamp only. Stability keeps
		// equal timestamps in insertion order, which must equal ascending
		// seq — the engines assign seq in insertion order.
		sort.SliceStable(ref, func(i, j int) bool { return ref[i].at < ref[j].at })

		if len(popped) != len(ref) {
			t.Fatalf("trial %d: popped %d events, pushed %d", trial, len(popped), len(ref))
		}
		for i := range ref {
			// Interleaved pops cut the stream into drain segments; full
			// global order only holds for the final drain, so check the
			// local invariant instead: within every maximal run of equal
			// timestamps in the popped stream, seq strictly ascends.
			if i > 0 && popped[i].at == popped[i-1].at && popped[i].seq <= popped[i-1].seq {
				t.Fatalf("trial %d: pop %d: equal-timestamp events out of insertion order: seq %d after %d (at=%d)",
					trial, i, popped[i].seq, popped[i-1].seq, popped[i].at)
			}
		}
	}
}

// TestEventQueueDrainOrder is the bulk-load variant with a full total-order
// check: push a shuffled multiset with heavy collisions, drain completely,
// and require exactly the stable-sorted reference sequence.
func TestEventQueueDrainOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(0x15C4))
	for trial := 0; trial < 100; trial++ {
		nEvents := 1 + rng.Intn(1000)
		nStamps := 1 + rng.Intn(6)
		var q eventQueue
		ref := make([]event, nEvents)
		for i := range ref {
			ref[i] = event{at: int64(rng.Intn(nStamps)), seq: uint64(i + 1)}
			q.push(ref[i])
		}
		sort.SliceStable(ref, func(i, j int) bool { return ref[i].at < ref[j].at })
		for i, want := range ref {
			got := q.pop()
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("trial %d: pop %d: got (at=%d seq=%d), want (at=%d seq=%d)",
					trial, i, got.at, got.seq, want.at, want.seq)
			}
		}
		if q.Len() != 0 {
			t.Fatalf("trial %d: %d events left after drain", trial, q.Len())
		}
	}
}
