// Package agent is the concurrent runtime: every node (proxy, client,
// origin) runs as its own goroutine with a mailbox channel, communicating
// purely by message passing — the Go translation of the paper's Carolina
// multi-agent platform where "each running agent implements one proxy"
// (§V.1) and of its distributed deployment where "each host runs exactly
// one ADC-agent" (§V.1.2).
//
// Under closed-loop injection the runtime is confluent: messages of one
// request chain are causally ordered, so every node observes the same
// sequence of events as under the sequential engine and the metrics are
// bit-identical (asserted by the integration tests, DESIGN.md §10.5).
package agent

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/msg"
	"github.com/adc-sim/adc/internal/sim"
)

// DefaultMailbox is the default per-node mailbox capacity. Closed-loop
// clients keep at most one message in flight per client, so any positive
// capacity avoids blocking; a roomy default keeps open-loop experiments
// from stalling senders.
const DefaultMailbox = 1024

// Runtime hosts a set of nodes, one goroutine each. Dispatch uses the same
// dense ids.Table as the sequential engines, so the per-send mailbox lookup
// is an array index rather than a map probe.
type Runtime struct {
	mailbox int
	nodes   ids.Table[sim.Node]
	boxes   ids.Table[chan msg.Message]
	wg      sync.WaitGroup
	// dropped counts messages sent to unregistered destinations — a
	// wiring bug. Atomic: any node goroutine may fault.
	dropped atomic.Uint64
}

// New returns an empty runtime. mailbox <= 0 selects DefaultMailbox.
func New(mailbox int) *Runtime {
	if mailbox <= 0 {
		mailbox = DefaultMailbox
	}
	return &Runtime{mailbox: mailbox}
}

// Register adds a node before Run.
func (r *Runtime) Register(n sim.Node) error {
	if !r.nodes.Put(n.ID(), n) {
		return fmt.Errorf("agent: duplicate node %v", n.ID())
	}
	r.boxes.Put(n.ID(), make(chan msg.Message, r.mailbox))
	return nil
}

// sender is the per-node sim.Context. Hop counting happens on send, same
// as the sequential engine, so accounting is identical.
type sender struct{ r *Runtime }

var _ sim.Context = sender{}

func (s sender) Send(m msg.Message) {
	sim.CountHop(m)
	box, ok := s.r.boxes.Get(m.Dest())
	if !ok {
		// Unroutable messages indicate a wiring bug; the sequential
		// engine turns them into an error, here we must not block a
		// node goroutine, so the message is dropped — but counted,
		// so the fault is observable via Dropped instead of only
		// through a stalled closed loop.
		s.r.dropped.Add(1)
		return
	}
	box <- m
}

// Dropped reports how many messages were sent to destinations with no
// registered node since the runtime was created. Any non-zero value means
// the topology wiring is broken; callers should treat it as fatal.
func (r *Runtime) Dropped() uint64 { return r.dropped.Load() }

// Run starts every node goroutine, fires the Starters, then blocks until
// done is closed. It stops all nodes and waits for them to exit before
// returning, so all node state is safe to read afterwards.
//
// The caller owns the termination condition: wire the clients' OnDone
// callbacks to close done once all traffic has drained (see
// internal/cluster). Stopping with messages still in flight would lose
// them, which closed-loop injection rules out.
func (r *Runtime) Run(done <-chan struct{}) {
	stop := make(chan struct{})
	r.nodes.Ascending(func(id ids.NodeID, n sim.Node) {
		box, _ := r.boxes.Get(id)
		r.wg.Add(1)
		go func(n sim.Node, box chan msg.Message) {
			defer r.wg.Done()
			ctx := sender{r: r}
			for {
				select {
				case m := <-box:
					n.Handle(ctx, m)
				case <-stop:
					// Drain anything that raced with stop so
					// senders can never block.
					for {
						select {
						case m := <-box:
							n.Handle(ctx, m)
						default:
							return
						}
					}
				}
			}
		}(n, box)
	})

	// Inject initial traffic from a dedicated context, mirroring
	// sim.Engine.Run: Starters fire in ascending NodeID order, outside
	// any node goroutine.
	ctx := sender{r: r}
	r.nodes.Ascending(func(_ ids.NodeID, n sim.Node) {
		if s, ok := n.(sim.Starter); ok {
			s.Start(ctx)
		}
	})

	<-done
	close(stop)
	r.wg.Wait()
}
