package ids

import (
	"reflect"
	"testing"
)

func TestTablePutGet(t *testing.T) {
	var tb Table[string]
	entries := map[NodeID]string{
		0:         "p0",
		4:         "p4",
		Origin:    "origin",
		Client(0): "c0",
		Client(3): "c3",
		-5:        "weird", // between origin and clients: sparse fallback
		denseLimit + 7: "huge", // beyond the dense range: sparse fallback
	}
	for id, v := range entries {
		if !tb.Put(id, v) {
			t.Fatalf("Put(%v) rejected", id)
		}
	}
	if tb.Len() != len(entries) {
		t.Fatalf("Len = %d, want %d", tb.Len(), len(entries))
	}
	for id, want := range entries {
		got, ok := tb.Get(id)
		if !ok || got != want {
			t.Errorf("Get(%v) = %q,%v want %q", id, got, ok, want)
		}
	}
	for _, id := range []NodeID{1, 3, None, Client(1), Client(99), -6, denseLimit + 8} {
		if _, ok := tb.Get(id); ok {
			t.Errorf("Get(%v) found a phantom entry", id)
		}
	}
}

func TestTableRejectsDuplicates(t *testing.T) {
	var tb Table[int]
	for _, id := range []NodeID{0, Origin, Client(2), -4, denseLimit + 1} {
		if !tb.Put(id, 1) {
			t.Fatalf("first Put(%v) rejected", id)
		}
		if tb.Put(id, 2) {
			t.Errorf("duplicate Put(%v) accepted", id)
		}
		if v, _ := tb.Get(id); v != 1 {
			t.Errorf("duplicate Put(%v) overwrote the entry", id)
		}
	}
	if tb.Len() != 5 {
		t.Errorf("Len = %d, want 5", tb.Len())
	}
}

func TestTableAscendingOrder(t *testing.T) {
	var tb Table[int]
	input := []NodeID{3, Client(2), Origin, 0, Client(0), -5, 1, denseLimit + 2}
	for _, id := range input {
		tb.Put(id, int(id))
	}
	var got []NodeID
	tb.Ascending(func(id NodeID, v int) {
		if int(id) != v {
			t.Errorf("entry %v carries value %d", id, v)
		}
		got = append(got, id)
	})
	want := []NodeID{Client(2), Client(0), -5, Origin, 0, 1, 3, denseLimit + 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Ascending order = %v, want %v", got, want)
	}
}

func TestTableZeroValue(t *testing.T) {
	var tb Table[int]
	if tb.Len() != 0 {
		t.Error("zero table has entries")
	}
	if _, ok := tb.Get(0); ok {
		t.Error("zero table Get found something")
	}
	calls := 0
	tb.Ascending(func(NodeID, int) { calls++ })
	if calls != 0 {
		t.Error("zero table Ascending visited entries")
	}
}
